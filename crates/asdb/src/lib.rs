//! # ecn-asdb — IP-to-AS mapping
//!
//! The study maps traceroute hop addresses to autonomous systems to ask
//! *where* ECT marks get stripped: "59.1% of the locations where ECT(0)
//! marks are stripped … were at AS boundaries" (paper §4.2). The paper is
//! explicit that IP-to-AS mapping from traceroute addresses is inexact
//! (citing Zhang et al.); this database reproduces both the mechanism and
//! the caveat — lookups can be configured to miss, and boundary inference
//! works purely from consecutive hop addresses, as in the paper.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A prefix-to-ASN table (longest-prefix match).
#[derive(Debug, Clone, Default)]
pub struct AsDb {
    map: PrefixTable,
}

/// Internal LPM structure (binary trie, same algorithm as the router FIB;
/// re-implemented here so `ecn-asdb` stays dependency-free below `serde`).
#[derive(Debug, Clone, Default)]
struct PrefixTable {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Node {
    children: [u32; 2], // 0 = none
    asn: Option<u32>,
}

impl PrefixTable {
    fn ensure_root(&mut self) {
        if self.nodes.is_empty() {
            self.nodes.push(Node::default());
        }
    }

    fn insert(&mut self, addr: u32, len: u8, asn: u32) {
        self.ensure_root();
        let mut node = 0usize;
        for i in 0..len.min(32) {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            node = if next == 0 {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::default());
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                next as usize
            };
        }
        self.nodes[node].asn = Some(asn);
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut node = 0usize;
        let mut best = self.nodes[0].asn;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            let next = self.nodes[node].children[bit];
            if next == 0 {
                break;
            }
            node = next as usize;
            if let Some(asn) = self.nodes[node].asn {
                best = Some(asn);
            }
        }
        best
    }
}

impl AsDb {
    /// An empty database.
    pub fn new() -> AsDb {
        AsDb::default()
    }

    /// Register `prefix/len → asn`.
    pub fn insert(&mut self, prefix: Ipv4Addr, len: u8, asn: u32) {
        self.map.insert(u32::from(prefix), len, asn);
    }

    /// Longest-prefix-match lookup. `None` models the unmappable hops the
    /// paper excludes from the AS-boundary percentage ("where we were able
    /// to determine the AS").
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<u32> {
        self.map.lookup(u32::from(addr))
    }

    /// Classify a hop within a traceroute path: given the previous and
    /// current hop addresses, is the current hop at an AS boundary?
    pub fn classify_hop(&self, prev: Option<Ipv4Addr>, hop: Ipv4Addr) -> HopAsClass {
        let Some(asn) = self.lookup(hop) else {
            return HopAsClass::Unmapped;
        };
        match prev.and_then(|p| self.lookup(p)) {
            None => HopAsClass::Interior { asn },
            Some(prev_asn) if prev_asn == asn => HopAsClass::Interior { asn },
            Some(prev_asn) => HopAsClass::Boundary {
                from: prev_asn,
                to: asn,
            },
        }
    }

    /// Distinct ASNs along a path of hop addresses (unmapped hops skipped).
    pub fn path_as_set(&self, hops: &[Ipv4Addr]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for h in hops {
            if let Some(asn) = self.lookup(*h) {
                if out.last() != Some(&asn) {
                    out.push(asn);
                }
            }
        }
        out
    }
}

/// AS classification of one traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopAsClass {
    /// Same AS as the previous mapped hop (or no previous hop).
    Interior {
        /// The AS this hop is in.
        asn: u32,
    },
    /// First hop inside a new AS — an inter-AS boundary crossing.
    Boundary {
        /// Previous hop's AS.
        from: u32,
        /// This hop's AS.
        to: u32,
    },
    /// Address not present in the database.
    Unmapped,
}

impl HopAsClass {
    /// Is this a boundary crossing?
    pub fn is_boundary(self) -> bool {
        matches!(self, HopAsClass::Boundary { .. })
    }

    /// The hop's ASN, if mapped.
    pub fn asn(self) -> Option<u32> {
        match self {
            HopAsClass::Interior { asn } => Some(asn),
            HopAsClass::Boundary { to, .. } => Some(to),
            HopAsClass::Unmapped => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> AsDb {
        let mut db = AsDb::new();
        db.insert(Ipv4Addr::new(10, 0, 0, 0), 16, 65001);
        db.insert(Ipv4Addr::new(10, 1, 0, 0), 16, 65002);
        db.insert(Ipv4Addr::new(10, 1, 128, 0), 17, 65003); // more specific
        db
    }

    #[test]
    fn longest_prefix_wins() {
        let db = db();
        assert_eq!(db.lookup(Ipv4Addr::new(10, 0, 1, 1)), Some(65001));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 1, 1)), Some(65002));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 200, 1)), Some(65003));
        assert_eq!(db.lookup(Ipv4Addr::new(192, 0, 2, 1)), None);
    }

    #[test]
    fn boundary_classification() {
        let db = db();
        let a = Ipv4Addr::new(10, 0, 0, 1); // AS 65001
        let b = Ipv4Addr::new(10, 0, 0, 2); // AS 65001
        let c = Ipv4Addr::new(10, 1, 0, 1); // AS 65002
        let x = Ipv4Addr::new(192, 0, 2, 1); // unmapped

        assert_eq!(
            db.classify_hop(None, a),
            HopAsClass::Interior { asn: 65001 }
        );
        assert_eq!(
            db.classify_hop(Some(a), b),
            HopAsClass::Interior { asn: 65001 }
        );
        assert_eq!(
            db.classify_hop(Some(b), c),
            HopAsClass::Boundary {
                from: 65001,
                to: 65002
            }
        );
        assert!(db.classify_hop(Some(b), c).is_boundary());
        assert_eq!(db.classify_hop(Some(a), x), HopAsClass::Unmapped);
        assert_eq!(
            db.classify_hop(Some(x), c),
            HopAsClass::Interior { asn: 65002 }
        );
    }

    #[test]
    fn path_as_set_deduplicates_runs() {
        let db = db();
        let path = [
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            Ipv4Addr::new(10, 1, 200, 1),
            Ipv4Addr::new(192, 0, 2, 1), // unmapped, skipped
        ];
        assert_eq!(db.path_as_set(&path), vec![65001, 65002, 65003]);
    }

    #[test]
    fn empty_db_maps_nothing() {
        let db = AsDb::new();
        assert_eq!(db.lookup(Ipv4Addr::new(1, 2, 3, 4)), None);
        assert_eq!(
            db.classify_hop(None, Ipv4Addr::new(1, 2, 3, 4)),
            HopAsClass::Unmapped
        );
    }

    #[test]
    fn default_route_as_zero_length_prefix() {
        let mut db = AsDb::new();
        db.insert(Ipv4Addr::new(0, 0, 0, 0), 0, 64512);
        db.insert(Ipv4Addr::new(10, 0, 0, 0), 8, 65001);
        assert_eq!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(64512));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(65001));
    }
}
