//! Differential suite: the streamed-aggregate report path must render
//! **byte-identically** to the legacy trace-walk derivation, for random
//! seeds, shard counts, work-stealing orders, and target chunkings. This
//! is the gate that let `FullReport` switch its default to
//! `from_aggregates` and the engine flip `keep_traces` off: any
//! divergence between the two derivations — a chunk double-count, a
//! merge that isn't commutative, a ratio computed in a different order —
//! shows up here as a unified report diff.

use ecn_core::{run_engine, CampaignConfig, EngineConfig, FullReport, UnitOrder};
use ecn_pool::PoolPlan;
use proptest::prelude::*;

fn mini_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 20,
        traces_per_vantage: Some(1),
        ..CampaignConfig::quick(seed)
    }
}

/// Campaign-pair cases are expensive; run PROPTEST_CASES/16 of them
/// (≥ 2), so the default CI budget stays intact while the deep-property
/// job (PROPTEST_CASES=256) widens the sweep.
fn cases() -> u32 {
    let base: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    (base / 16).max(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]
    #[test]
    fn aggregate_report_renders_byte_identically_to_trace_walk(
        seed in 1u64..10_000,
        shards in 1usize..9,
        target_chunks in 1usize..4,
        order_seed in 0u64..1_000,
        with_traceroute in proptest::arbitrary::any::<bool>(),
    ) {
        let plan = PoolPlan::scaled(24);
        let cfg = CampaignConfig {
            run_traceroute: with_traceroute,
            ..mini_cfg(seed)
        };
        // one run, both derivations: keep the raw traces so the legacy
        // walk has something to walk
        let run = run_engine(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(shards),
                target_chunks,
                unit_order: UnitOrder::Shuffled(order_seed),
                ..EngineConfig::default()
            }
            .keeping_traces(),
        );
        let legacy = FullReport::from_traces(&run.result).render();
        let streamed = FullReport::from_aggregates(&run.result).render();
        prop_assert_eq!(
            legacy, streamed,
            "seed {} shards {} chunks {} order {} traceroute {}",
            seed, shards, target_chunks, order_seed, with_traceroute
        );
    }
}

/// The same differential, pinned: a reducer-only run must render exactly
/// what a trace-keeping run of the same campaign derives from its raw
/// records — the aggregates lose no report-relevant information.
#[test]
fn reducer_only_run_renders_what_the_trace_walk_would() {
    let plan = PoolPlan::scaled(30);
    let cfg = mini_cfg(2015);
    let lean = run_engine(&plan, &cfg, &EngineConfig::with_shards(4));
    let kept = run_engine(&plan, &cfg, &EngineConfig::with_shards(2).keeping_traces());
    assert!(lean.result.traces.is_empty());
    assert_eq!(lean.peak_resident_traces, 0, "no TraceRecord retained");
    assert!(!kept.result.traces.is_empty());
    assert_eq!(
        FullReport::from_aggregates(&lean.result).render(),
        FullReport::from_traces(&kept.result).render(),
    );
}

/// Chunked campaigns re-assemble per-trace bars from partial records; the
/// bar counts must match the logical schedule, not the partial count.
#[test]
fn chunked_bars_are_per_logical_trace() {
    let plan = PoolPlan::scaled(24);
    let cfg = CampaignConfig {
        run_traceroute: false,
        ..mini_cfg(99)
    };
    let chunked = run_engine(
        &plan,
        &cfg,
        &EngineConfig {
            shards: Some(3),
            target_chunks: 3,
            ..EngineConfig::default()
        }
        .keeping_traces(),
    );
    let report = FullReport::from_aggregates(&chunked.result);
    assert_eq!(
        report.figure2.bars.len(),
        chunked.result.traces.len(),
        "one Figure 2 bar per merged logical trace"
    );
    assert_eq!(
        FullReport::from_traces(&chunked.result).render(),
        report.render(),
        "chunked render differential"
    );
}
