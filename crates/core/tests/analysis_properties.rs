//! Property-based tests of the analysis layer: for arbitrary probe
//! outcomes, the derived tables/figures must satisfy their defining
//! invariants (the same arithmetic the paper's numbers obey).

use ecn_core::analysis::{figure2, figure3, figure5, table2};
use ecn_core::{ServerOutcome, TcpProbeResult, TraceRecord, UdpProbeResult};
use ecn_netsim::Nanos;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn udp(reachable: bool) -> UdpProbeResult {
    UdpProbeResult {
        reachable,
        attempts: 1,
        response_ecn: None,
        rtt: None,
    }
}

fn tcp(reachable: bool, negotiated: bool) -> TcpProbeResult {
    TcpProbeResult {
        reachable,
        http_status: reachable.then_some(302),
        requested_ecn: true,
        negotiated_ecn: negotiated && reachable,
        syn_ack_flags: None,
        close_reason: None,
    }
}

/// Strategy: a set of traces over a shared server population with random
/// per-trace outcomes.
fn arb_traces() -> impl Strategy<Value = Vec<TraceRecord>> {
    (2usize..6, 1usize..25).prop_flat_map(|(vantages, servers)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
                servers..=servers,
            ),
            vantages * 2..vantages * 2 + 3,
        )
        .prop_map(move |trace_bits| {
            trace_bits
                .into_iter()
                .enumerate()
                .map(|(ti, bits)| TraceRecord {
                    vantage_key: format!("v{}", ti % vantages),
                    vantage_name: format!("V{}", ti % vantages),
                    batch: 1 + (ti % 2) as u8,
                    started_at: Nanos::from_secs(ti as u64 * 100),
                    outcomes: bits
                        .into_iter()
                        .enumerate()
                        .map(|(si, (p, e, t, n))| ServerOutcome {
                            server: Ipv4Addr::new(10, 0, (si / 256) as u8, (si % 256) as u8),
                            udp_plain: udp(p),
                            udp_ect: udp(e),
                            tcp_plain: tcp(t, false),
                            tcp_ecn: tcp(t, n),
                            validation: None,
                        })
                        .collect(),
                })
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn figure2_percentages_are_well_formed(traces in arb_traces()) {
        let f = figure2(&traces);
        prop_assert_eq!(f.bars.len(), traces.len());
        for (bar, t) in f.bars.iter().zip(&traces) {
            prop_assert!(bar.pct_a >= 0.0 && bar.pct_a <= 100.0);
            prop_assert!(bar.pct_b >= 0.0 && bar.pct_b <= 100.0);
            // both-reachable is bounded by each single count
            let both = t.udp_both_reachable();
            prop_assert!(both <= t.udp_plain_reachable());
            prop_assert!(both <= t.udp_ect_reachable());
        }
        prop_assert!(f.min_a <= f.avg_a + 1e-9);
        prop_assert!(f.min_b <= f.avg_b + 1e-9);
    }

    #[test]
    fn figure3_counts_are_consistent_with_trace_counts(traces in arb_traces()) {
        let f = figure3(&traces);
        for (loc, servers) in &f.per_location {
            let traces_here = traces.iter().filter(|t| &t.vantage_name == loc).count() as u32;
            for d in servers.values() {
                prop_assert_eq!(d.traces, traces_here);
                prop_assert!(d.diff_a <= d.plain_traces);
                prop_assert!(d.diff_b <= d.ect_traces);
                prop_assert!(d.frac_a() <= 1.0 && d.frac_b() <= 1.0);
                // a server cannot be both-diff in the same trace, so the
                // sums stay within the trace budget
                prop_assert!(d.diff_a + d.diff_b <= d.traces);
            }
        }
        // persistent set is a subset of every location's >50% set
        for addr in &f.persistent_a {
            for (_, servers) in &f.per_location {
                prop_assert!(servers[addr].frac_a() > 0.5);
            }
        }
    }

    #[test]
    fn figure5_negotiated_never_exceeds_reachable(traces in arb_traces()) {
        let f = figure5(&traces);
        for bar in &f.bars {
            prop_assert!(bar.negotiated <= bar.tcp_reachable);
        }
        prop_assert!(f.avg_negotiated <= f.avg_reachable + 1e-9);
        let pct = f.negotiated_pct();
        prop_assert!((0.0..=100.0).contains(&pct));
    }

    #[test]
    fn table2_rows_and_phi_are_bounded(traces in arb_traces()) {
        let t = table2(&traces);
        prop_assert!(t.phi.is_finite());
        prop_assert!(t.phi >= -1.0 - 1e-9 && t.phi <= 1.0 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&t.blocked_but_negotiates));
        for row in &t.rows {
            prop_assert!(row.avg_fail_tcp_ecn + row.avg_ok_tcp_ecn <= row.avg_udp_ect_unreachable + 1e-9);
            prop_assert!(row.traces > 0);
        }
    }

    #[test]
    fn analyses_never_panic_on_empty_or_degenerate_input(n in 0usize..3) {
        let traces: Vec<TraceRecord> = (0..n)
            .map(|i| TraceRecord {
                vantage_key: "v".into(),
                vantage_name: "V".into(),
                batch: 1,
                started_at: Nanos::from_secs(i as u64),
                outcomes: vec![],
            })
            .collect();
        let f2 = figure2(&traces);
        let _ = figure3(&traces);
        let f5 = figure5(&traces);
        let t2 = table2(&traces);
        prop_assert!(f2.avg_a.is_finite() || traces.is_empty());
        prop_assert!(f5.negotiated_pct().is_finite());
        prop_assert!(t2.phi.is_finite());
    }
}
