//! Property tests of the sharded engine: for arbitrary seeds, shard
//! counts and work-stealing schedules, the aggregate Table 2 counts
//! (per-vantage ECT-marked reachability) — and every other streamed
//! aggregate — must be invariant. Only the seed is allowed to change the
//! measurement.

use ecn_core::{run_engine, CampaignConfig, EngineConfig, UnitOrder};
use ecn_pool::PoolPlan;
use proptest::prelude::*;

fn mini_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 20,
        traces_per_vantage: Some(1),
        run_traceroute: false,
        ..CampaignConfig::quick(seed)
    }
}

proptest! {
    // Each case runs two scaled-down campaigns; 3 cases keeps the suite
    // inside the CI budget regardless of PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn table2_counts_invariant_under_sharding(
        seed in 1u64..10_000,
        shards in 1usize..9,
        order_seed in 0u64..1_000,
    ) {
        let plan = PoolPlan::scaled(24);
        let cfg = mini_cfg(seed);
        // baseline keeps raw traces so the trace count can cross-check the
        // streamed denominator below; the sharded run is reducer-only (the
        // default)
        let baseline = run_engine(&plan, &cfg, &EngineConfig::with_shards(1).keeping_traces());
        let sharded = run_engine(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(shards),
                unit_order: UnitOrder::Shuffled(order_seed),
                ..EngineConfig::default()
            },
        );

        // The tentpole property: per-vantage Table 2 counts do not depend
        // on shard count or on which shard stole which unit.
        prop_assert_eq!(
            &baseline.result.aggregates.table2,
            &sharded.result.aggregates.table2
        );
        // Neither do the remaining streamed aggregates.
        prop_assert_eq!(
            &baseline.result.aggregates.reachability,
            &sharded.result.aggregates.reachability
        );
        prop_assert_eq!(
            &baseline.result.aggregates.survey,
            &sharded.result.aggregates.survey
        );
        // ... and so does the full aggregate set (per-trace stats, figure 3
        // differentials, batch counters, figure 4 hop state included)
        prop_assert_eq!(&baseline.result.aggregates, &sharded.result.aggregates);
        // reducer-only runs drop the raw trace vector but keep the counts,
        // and retain zero TraceRecords at peak
        prop_assert!(sharded.result.traces.is_empty());
        prop_assert_eq!(sharded.peak_resident_traces, 0);
        prop_assert_eq!(
            baseline.peak_resident_traces,
            baseline.result.traces.len()
        );
        let traced: u64 = sharded
            .result
            .aggregates
            .table2
            .per_vantage
            .values()
            .map(|v| v.traces)
            .sum();
        prop_assert_eq!(traced as usize, baseline.result.traces.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    // AQM marking and validation under sharding: a world with CE-marking
    // AQM edges and the endpoint validation pass enabled must stream the
    // same aggregates — validation outcome counters included — for every
    // shard count and stealing order. AQM marks ride the per-link packet
    // RNG stream, which is keyed by link identity, not by schedule; this
    // is the campaign-level closure of the queue-level determinism
    // property in `ecn-netsim`'s proptests.
    #[test]
    fn aqm_marking_and_validation_invariant_under_sharding(
        seed in 1u64..10_000,
        shards in 2usize..9,
        order_seed in 0u64..1_000,
    ) {
        let plan = PoolPlan {
            aqm_red: 1,
            aqm_codel: 1,
            ce_suppress: 1,
            ..PoolPlan::scaled(30)
        };
        let mut cfg = mini_cfg(seed);
        cfg.validation.packets = 10;
        let baseline = run_engine(&plan, &cfg, &EngineConfig::with_shards(1));
        prop_assert!(
            !baseline.result.aggregates.validation.is_empty(),
            "the validation pass must produce observations"
        );
        let sharded = run_engine(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(shards),
                unit_order: UnitOrder::Shuffled(order_seed),
                ..EngineConfig::default()
            },
        );
        prop_assert_eq!(
            &baseline.result.aggregates.validation,
            &sharded.result.aggregates.validation
        );
        prop_assert_eq!(&baseline.result.aggregates, &sharded.result.aggregates);
    }
}

/// The streamed Table 2 counts must agree with the batch `analysis::table2`
/// computed from the raw trace vector of the same run.
#[test]
fn streamed_table2_matches_batch_analysis() {
    let plan = PoolPlan::scaled(30);
    let cfg = mini_cfg(77);
    let run = run_engine(&plan, &cfg, &EngineConfig::with_shards(3).keeping_traces());
    let batch = ecn_core::analysis::table2(&run.result.traces);
    let streamed = &run.result.aggregates.table2;
    for row in &batch.rows {
        let v = &streamed.per_vantage[&row.location];
        assert_eq!(
            v.udp_ect_unreachable as f64 / v.traces as f64,
            row.avg_udp_ect_unreachable,
            "{}: streamed vs batch ECT-unreachable average",
            row.location
        );
        assert_eq!(v.traces as usize, row.traces);
    }
    assert!((streamed.phi() - batch.phi).abs() < 1e-12);
}
