//! Multi-process shard mode: partition the engine's unit pool across
//! child **processes**, each running its own work-stealing shard pool,
//! and tree-merge their serialized reducers in the parent — under a
//! supervisor that retries failed workers and can checkpoint progress.
//!
//! ## Why processes
//!
//! Shards bound wall-clock; processes bound *memory*. Every reducer map
//! a shard touches lives until the final merge, so a megapool campaign
//! (10⁵–10⁶ servers) concentrates O(vantages × servers) of keyed state —
//! plus every concurrently instantiated unit world — in one address
//! space. The reducer contract (commutative, associative merge) was
//! designed so shards can live anywhere; this module puts them behind a
//! pipe: each worker holds only its partition's worlds and partial
//! aggregates, and the parent's high-water mark stays at discovery +
//! merged aggregates.
//!
//! ## Worker protocol
//!
//! The parent spawns `processes` children running the **same binary**
//! with the single argument [`WORKER_ARG`] (binaries opt in by calling
//! [`maybe_worker`] first thing in `main`; tests point
//! [`WORKER_EXE_ENV`] at the `ecnudp` binary instead). Each child reads
//! one [`WorkerRequest`] as JSON on stdin, runs its round-robin
//! partition of the canonical unit list — position `p` of the
//! not-yet-completed units belongs to worker `p % processes` — and
//! writes one [`WorkerPayload`] as JSON on stdout: its tree-merged
//! [`ShardReducers`], timing breakdown, peak-RSS gauge, and an
//! event-stream summary ([`WorkerCounters`]). Worker stderr is piped
//! through a line-tagging relay, so concurrent panics surface as
//! `[worker N] …` lines instead of an unattributable interleaving.
//!
//! Workers skip discovery entirely: the parent runs it once and ships
//! the target list in the request. A worker only needs the blueprint
//! (rebuilt from the same plan + seed, bit-identical by construction)
//! and the per-vantage schedule, which is world-clock-independent.
//!
//! ## Supervision
//!
//! Each worker slot gets a supervisor thread running a bounded retry
//! loop: spawn → feed request → await payload (optionally under
//! [`EngineConfig::worker_timeout`]) → classify any failure into a typed
//! [`MpFailure`] (crash, hang, truncated/malformed payload, pipe error)
//! → back off exponentially and respawn, re-shipping **the same unit
//! slice** (the partition is a pure function of the request, so a retry
//! is deterministic). A slot that exhausts
//! [`EngineConfig::max_worker_retries`] turns into
//! [`MpError::RetriesExhausted`] naming the worker and its unit range —
//! never a panic. Because reducers merge commutatively, recovered runs
//! render byte-identical to fault-free ones;
//! `tests/process_determinism.rs` and `tests/fault_injection.rs` prove
//! it against real injected subprocess failures (`crates/core/src/fault.rs`).
//!
//! ## Checkpoint / resume
//!
//! With [`EngineConfig::checkpoint`] set, the parent persists a
//! [`Checkpoint`] — merged-so-far aggregates plus the completed-unit
//! bitmap — after every worker payload, via the atomic same-directory
//! temp+rename pattern. [`EngineConfig::resume`] loads one, verifies its
//! campaign fingerprint, and re-runs only the units absent from the
//! bitmap; the commutative merge makes the stitched result byte-identical
//! to an uninterrupted run.
//!
//! ## Determinism
//!
//! The partition is over *canonical* unit indices, reducers are
//! commutative and associative, and every unit's RNG domain derives from
//! its identity — so process count, retry schedule, and resume
//! partitioning, like shard count and stealing order, cannot change any
//! result byte.

use crate::campaign::{discover_in, finish, plan_with_churn, DiscoveryStats};
use crate::config::CampaignConfig;
use crate::engine::{
    apply_unit_order, canonical_units, per_vantage_schedule, run_unit_pool, EngineConfig,
    EngineRun, EngineTiming, Unit, UnitOrder,
};
use crate::events::{Event, Subscriber, UnitId};
use crate::fault::{FaultPlan, WorkerFault, CRASH_EXIT_CODE, PARENT_EXIT_CODE};
use crate::reducers::{merge_depth, merge_tree, ShardReducers};
use ecn_netsim::SimCounters;
use ecn_pool::{PoolPlan, WorldBlueprint};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The hidden `argv[1]` that switches a cooperating binary into worker
/// mode (see [`maybe_worker`]). Deliberately not a `--flag`: it can
/// never collide with user-facing CLI surface.
pub const WORKER_ARG: &str = "__mp-worker";

/// Environment override for the worker executable. Defaults to
/// `std::env::current_exe()` (self-spawn); set this to the `ecnudp`
/// binary from contexts whose own executable has no worker hook (the
/// libtest harness cannot intercept `main`).
pub const WORKER_EXE_ENV: &str = "ECNUDP_WORKER_EXE";

/// Everything a worker needs to run its partition, shipped as JSON on
/// its stdin. The plan already carries the churn pin
/// (`plan_with_churn`), and `targets` is the parent's discovery result —
/// workers never re-discover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerRequest {
    /// The churned pool plan (world definition).
    pub plan: PoolPlan,
    /// The campaign methodology configuration.
    pub cfg: CampaignConfig,
    /// Discovered probe targets, in probing order.
    pub targets: Vec<Ipv4Addr>,
    /// Target-list chunks per vantage.
    pub target_chunks: usize,
    /// Shards per worker (`None` = the worker's available parallelism).
    pub shards: Option<usize>,
    /// Unit scheduling order within the worker's partition.
    pub unit_order: UnitOrder,
    /// Total worker processes.
    pub processes: usize,
    /// This worker's index in `0..processes`.
    pub index: usize,
    /// Canonical unit indices already completed (sorted; from a resumed
    /// checkpoint). The round-robin partition is dealt over the units
    /// *not* in this list.
    pub skip: Vec<usize>,
    /// Which spawn attempt this is (0 = first). Carried so injected
    /// faults (`crates/core/src/fault.rs`) can scope themselves to
    /// early attempts.
    pub attempt: u32,
}

/// Event-stream summary a worker sends home: observation totals plus the
/// merged netsim counters, re-keyed as owned `String`s (the in-process
/// [`SimCounters`] uses `&'static str` / `Arc<str>` keys, which cannot
/// cross a serialization boundary).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerCounters {
    /// Server observations produced (Σ unit traces × chunk targets).
    pub observations: u64,
    /// Datagrams delivered end-to-end.
    pub delivered: u64,
    /// Datagrams dropped, by cause label.
    pub dropped: BTreeMap<String, u64>,
    /// CE congestion marks applied.
    pub ce_marked: u64,
    /// ECN rewrites observed, by hop label.
    pub ecn_rewritten: BTreeMap<String, u64>,
}

impl WorkerCounters {
    fn absorb_sim(&mut self, c: &SimCounters) {
        self.delivered += c.delivered;
        for (k, v) in &c.dropped {
            *self.dropped.entry((*k).to_string()).or_default() += v;
        }
        self.ce_marked += c.ce_marked;
        for (k, v) in &c.ecn_rewritten {
            *self.ecn_rewritten.entry(k.to_string()).or_default() += v;
        }
    }

    /// Merge another summary (commutative, like everything on the wire).
    pub fn merge(&mut self, other: &WorkerCounters) {
        self.observations += other.observations;
        self.delivered += other.delivered;
        for (k, v) in &other.dropped {
            *self.dropped.entry(k.clone()).or_default() += v;
        }
        self.ce_marked += other.ce_marked;
        for (k, v) in &other.ecn_rewritten {
            *self.ecn_rewritten.entry(k.clone()).or_default() += v;
        }
    }
}

/// One worker's results, shipped as JSON on its stdout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPayload {
    /// The worker's tree-merged partial aggregates.
    pub aggregates: ShardReducers,
    /// Units the worker executed.
    pub units: usize,
    /// Shards the worker actually used.
    pub shards: usize,
    /// The worker's phase timing (blueprint + instantiate/probe/reduce).
    pub timing: EngineTiming,
    /// Peak retained `TraceRecord`s (always 0: workers never keep raw
    /// records).
    pub peak_resident_traces: usize,
    /// The worker process's `VmHWM` in kB (0 off-Linux).
    pub peak_rss_kb: u64,
    /// Event-stream summary (observations + netsim counters).
    pub counters: WorkerCounters,
}

// ------------------------------------------------------------- error types

/// Why one worker **attempt** failed — the per-attempt cause the
/// supervisor classifies before deciding to retry.
#[derive(Debug)]
pub enum MpFailure {
    /// The worker process could not be spawned.
    Spawn(std::io::Error),
    /// The unit request could not be written to the worker's stdin
    /// (and the worker still exited successfully, so the pipe error is
    /// the primary cause).
    RequestWrite(std::io::Error),
    /// The worker's stdout could not be read.
    PayloadRead(std::io::Error),
    /// The worker process could not be reaped.
    Wait(std::io::Error),
    /// The worker exited with a failure status before delivering a
    /// payload (`code` is `None` when it was killed by a signal).
    Crashed {
        /// The exit code, if the process exited normally.
        code: Option<i32>,
    },
    /// The worker exited successfully but its payload did not parse —
    /// truncated or corrupt JSON.
    Malformed {
        /// Parse-failure detail.
        detail: String,
        /// How many payload bytes arrived.
        payload_bytes: usize,
    },
    /// No payload arrived within [`EngineConfig::worker_timeout`]; the
    /// worker was killed.
    Hung {
        /// The deadline that expired.
        timeout: Duration,
    },
}

impl fmt::Display for MpFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpFailure::Spawn(e) => write!(f, "could not spawn the worker process: {e}"),
            MpFailure::RequestWrite(e) => {
                write!(f, "could not write the unit request to the worker: {e}")
            }
            MpFailure::PayloadRead(e) => write!(f, "could not read the worker payload: {e}"),
            MpFailure::Wait(e) => write!(f, "could not reap the worker process: {e}"),
            MpFailure::Crashed { code: Some(code) } => {
                write!(f, "worker crashed with exit code {code}")
            }
            MpFailure::Crashed { code: None } => write!(f, "worker was killed by a signal"),
            MpFailure::Malformed {
                detail,
                payload_bytes,
            } => write!(
                f,
                "worker payload was malformed ({payload_bytes} bytes received): {detail}"
            ),
            MpFailure::Hung { timeout } => write!(
                f,
                "worker delivered no payload within the {:.1}s deadline and was killed",
                timeout.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for MpFailure {}

/// A terminal multi-process campaign error — what the supervisor returns
/// instead of panicking. The `ecnudp` CLI maps these to a distinct exit
/// code; every variant names what failed and where.
#[derive(Debug)]
pub enum MpError {
    /// A worker slot failed on every attempt in the retry budget.
    RetriesExhausted {
        /// The worker index (`0..processes`).
        worker: usize,
        /// Human-readable description of the worker's unit slice.
        units: String,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The final attempt's failure.
        last: MpFailure,
    },
    /// A checkpoint file could not be read, written, or did not match
    /// this campaign.
    Checkpoint {
        /// The checkpoint path.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// The requested configuration cannot run under worker processes.
    Unsupported {
        /// The rejected combination.
        what: String,
    },
    /// An internal invariant failed (serialization, executable lookup).
    Internal(String),
}

impl fmt::Display for MpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpError::RetriesExhausted {
                worker,
                units,
                attempts,
                last,
            } => write!(
                f,
                "worker {worker} failed after {attempts} attempt(s) covering {units}: {last}"
            ),
            MpError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {}: {detail}", path.display())
            }
            MpError::Unsupported { what } => write!(f, "unsupported configuration: {what}"),
            MpError::Internal(detail) => write!(f, "internal multi-process error: {detail}"),
        }
    }
}

impl std::error::Error for MpError {}

// ------------------------------------------------------------- checkpoints

/// On-disk schema version of [`Checkpoint`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// A campaign checkpoint: the merged-so-far aggregates plus the bitmap
/// of completed canonical units, written atomically (same-directory
/// temp + rename) after every worker payload when
/// [`EngineConfig::checkpoint`] is set. `fingerprint` pins the file to
/// one (plan, config, chunking) so a resume against a different
/// scenario is rejected instead of silently merging apples into oranges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// FNV-1a over the serialized (plan, campaign config, target_chunks).
    pub fingerprint: u64,
    /// Total canonical units in the campaign.
    pub unit_count: usize,
    /// Completed canonical unit indices, sorted ascending.
    pub completed: Vec<usize>,
    /// Merge of every completed worker payload (plus any resumed state).
    pub aggregates: ShardReducers,
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The campaign identity a checkpoint is pinned to: plan + methodology
/// config + chunking, all of which shape the unit pool and its results.
fn campaign_fingerprint(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    chunks: usize,
) -> Result<u64, MpError> {
    let plan_json = serde_json::to_string(plan)
        .map_err(|e| MpError::Internal(format!("serialize plan for fingerprint: {e:?}")))?;
    let cfg_json = serde_json::to_string(cfg)
        .map_err(|e| MpError::Internal(format!("serialize config for fingerprint: {e:?}")))?;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, plan_json.as_bytes());
    h = fnv1a(h, cfg_json.as_bytes());
    h = fnv1a(h, &(chunks as u64).to_le_bytes());
    Ok(h)
}

/// Load and version-check a checkpoint file (fingerprint verification
/// happens in the resume path, which knows the campaign identity).
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, MpError> {
    let err = |detail: String| MpError::Checkpoint {
        path: path.to_path_buf(),
        detail,
    };
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("cannot read: {e}")))?;
    let ck: Checkpoint =
        serde_json::from_str(&text).map_err(|e| err(format!("cannot parse: {e:?}")))?;
    if ck.version != CHECKPOINT_VERSION {
        return Err(err(format!(
            "schema version {} (this build reads {CHECKPOINT_VERSION})",
            ck.version
        )));
    }
    Ok(ck)
}

/// Atomically write a checkpoint: serialize to a same-directory temp
/// file, then rename over the target (the `update_bench_json` pattern —
/// a reader, or a resume after a crash mid-write, sees either the old
/// complete file or the new complete file, never a torn one).
fn write_checkpoint(path: &Path, ck: &Checkpoint) -> Result<(), MpError> {
    let err = |detail: String| MpError::Checkpoint {
        path: path.to_path_buf(),
        detail,
    };
    let json = serde_json::to_string(ck).map_err(|e| err(format!("cannot serialize: {e:?}")))?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| err("path has no file name".into()))?;
    let tmp = dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!(".{name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, json.as_bytes())
        .map_err(|e| err(format!("cannot write temp file {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        err(format!("cannot rename temp file into place: {e}"))
    })
}

// ------------------------------------------------------------ worker side

/// The worker-side event collector: taps every unit's [`SimCounters`]
/// drain and observation totals. Enabled (`ENABLED = true`) but purely
/// observational, so worker results stay byte-identical to an
/// unobserved run — the process-determinism suite proves it.
#[derive(Default)]
struct WorkerTap {
    counters: WorkerCounters,
}

impl Subscriber for WorkerTap {
    fn fork(&self) -> Self {
        WorkerTap::default()
    }

    fn on_event(&mut self, event: &Event<'_>) {
        match event {
            Event::SimFlushed { counters, .. } => self.counters.absorb_sim(counters),
            Event::UnitFinished { observations, .. } => {
                self.counters.observations += *observations as u64;
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        self.counters.merge(&other.counters);
    }
}

/// This worker's round-robin partition: filter out completed units, then
/// deal the remainder by position. Must stay the exact mirror of the
/// parent's assignment ([`partition_assignments`]).
fn worker_partition(req: &WorkerRequest, vantage_count: usize, chunks: usize) -> Vec<Unit> {
    let processes = req.processes.max(1);
    let mut units = canonical_units(vantage_count, chunks);
    let mut canonical = 0usize;
    let mut position = 0usize;
    units.retain(|_| {
        let ci = canonical;
        canonical += 1;
        if req.skip.binary_search(&ci).is_ok() {
            return false;
        }
        let mine = position % processes == req.index;
        position += 1;
        mine
    });
    units
}

/// Execute one worker request (the body of worker mode; separated so
/// tests can drive the partition logic in-process).
pub fn run_worker(req: &WorkerRequest) -> WorkerPayload {
    run_worker_sabotaged(req, None)
}

/// [`run_worker`] with an optional injected fault. `CrashAfterUnits`
/// truncates the partition, does the (about-to-be-lost) work, then
/// exits — the most expensive failure mode the supervisor must absorb.
fn run_worker_sabotaged(req: &WorkerRequest, fault: Option<WorkerFault>) -> WorkerPayload {
    let mut timing = EngineTiming::default();
    let t0 = Instant::now();
    let bp = WorldBlueprint::build(&req.plan, req.cfg.seed);
    timing.blueprint_build = t0.elapsed();

    // A fresh world only for vantage specs and the (clock-independent)
    // schedule; no discovery, no probing happens in it.
    let sched_world = bp.instantiate();
    let vantage_count = sched_world.vantages.len();
    let per_vantage_sched = per_vantage_schedule(&sched_world, &req.cfg, vantage_count);
    drop(sched_world);

    let chunks = req.target_chunks.max(1);
    let mut units = worker_partition(req, vantage_count, chunks);
    apply_unit_order(&mut units, req.unit_order);
    let crash_after = match fault {
        Some(WorkerFault::CrashAfterUnits(k)) => {
            units.truncate(k);
            true
        }
        _ => false,
    };
    let unit_count = units.len();

    let eng = EngineConfig {
        shards: req.shards,
        ..EngineConfig::default()
    };
    let mut tap = WorkerTap::default();
    let wall0 = Instant::now();
    let pool = run_unit_pool(
        &bp,
        &req.targets,
        &per_vantage_sched,
        units,
        chunks,
        &req.cfg,
        &eng,
        &mut tap,
        &mut timing,
    );
    timing.wall = wall0.elapsed();
    if crash_after {
        eprintln!(
            "[fault] worker {} crashing after {unit_count} unit(s) (attempt {})",
            req.index, req.attempt
        );
        std::process::exit(CRASH_EXIT_CODE);
    }
    WorkerPayload {
        aggregates: pool.reducers,
        units: unit_count,
        shards: pool.shard_count,
        timing,
        peak_resident_traces: pool.peak_resident_traces,
        peak_rss_kb: peak_rss_kb(),
        counters: tap.counters,
    }
}

/// Worker mode entry point: if this process was spawned as a worker
/// (`argv[1]` == [`WORKER_ARG`]), serve one request over stdin/stdout
/// and return an exit code to bubble out of `main`; otherwise `None`.
/// Cooperating binaries (the `ecnudp` CLI, the bench harnesses) call
/// this before any argument parsing. Honors the test-only `ECNUDP_FAULT`
/// sabotage protocol (`crates/core/src/fault.rs`).
pub fn maybe_worker() -> Option<std::process::ExitCode> {
    if std::env::args().nth(1).as_deref() != Some(WORKER_ARG) {
        return None;
    }
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("mp worker: cannot read request: {e}");
        return Some(std::process::ExitCode::FAILURE);
    }
    let req: WorkerRequest = match serde_json::from_str(&input) {
        Ok(req) => req,
        Err(e) => {
            eprintln!("mp worker: malformed request: {e:?}");
            return Some(std::process::ExitCode::FAILURE);
        }
    };
    let fault = FaultPlan::from_env().for_worker(req.index, req.attempt);
    match fault {
        Some(WorkerFault::Panic) => {
            panic!(
                "ECNUDP_FAULT: injected panic in worker {} (attempt {})",
                req.index, req.attempt
            );
        }
        Some(WorkerFault::Hang) => {
            eprintln!(
                "[fault] worker {} hanging (attempt {})",
                req.index, req.attempt
            );
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        _ => {}
    }
    let payload = run_worker_sabotaged(&req, fault);
    let json = match serde_json::to_string(&payload) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("mp worker: cannot serialize payload: {e:?}");
            return Some(std::process::ExitCode::FAILURE);
        }
    };
    let bytes: &[u8] = match fault {
        // exit 0 with a half-written payload: the nastier corruption case
        // (a crash at least reports a status; this one lies)
        Some(WorkerFault::TruncatePayload) => &json.as_bytes()[..json.len() / 2],
        Some(WorkerFault::CorruptJson) => b"{\"aggregates\": not json at all",
        _ => json.as_bytes(),
    };
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(bytes).and_then(|()| out.flush()) {
        eprintln!("mp worker: cannot write payload: {e}");
        return Some(std::process::ExitCode::FAILURE);
    }
    Some(std::process::ExitCode::SUCCESS)
}

// ------------------------------------------------------------ parent side

/// Resolve the worker executable: [`WORKER_EXE_ENV`] override, else this
/// very binary.
fn worker_exe() -> Result<PathBuf, MpError> {
    if let Some(exe) = std::env::var_os(WORKER_EXE_ENV) {
        return Ok(exe.into());
    }
    std::env::current_exe()
        .map_err(|e| MpError::Internal(format!("cannot resolve the worker executable: {e}")))
}

/// Clamp an over-provisioned worker count to the remaining unit pool:
/// spawning more processes than units would pay a full per-worker
/// blueprint build for an empty slice. Zero remaining units (a resume
/// that already completed everything) need zero workers.
fn clamped_processes(requested: usize, remaining: usize) -> usize {
    requested.min(remaining).max(usize::from(remaining > 0))
}

/// The parent's unit assignment: deal the not-yet-completed canonical
/// indices round-robin by position. Mirror of [`worker_partition`].
fn partition_assignments(
    total_units: usize,
    completed: &BTreeSet<usize>,
    processes: usize,
) -> Vec<Vec<usize>> {
    let mut assignments = vec![Vec::new(); processes];
    for (position, ci) in (0..total_units)
        .filter(|i| !completed.contains(i))
        .enumerate()
    {
        assignments[position % processes].push(ci);
    }
    assignments
}

/// Compact human description of a worker's unit slice, for error
/// messages and events: count plus the first few canonical indices.
fn describe_units(assigned: &[usize], total: usize) -> String {
    let head: Vec<String> = assigned.iter().take(8).map(|i| i.to_string()).collect();
    let ellipsis = if assigned.len() > 8 { ", …" } else { "" };
    format!(
        "{} of {} unit(s) (canonical indices [{}{}])",
        assigned.len(),
        total,
        head.join(", "),
        ellipsis
    )
}

/// Exponential backoff before retry `attempt` (0-based): 50 ms doubling,
/// capped at 2 s — long enough to ride out transient spawn pressure,
/// short enough to be invisible next to a campaign.
fn retry_backoff(attempt: u32) -> Duration {
    Duration::from_millis((50u64 << attempt.min(5)).min(2_000))
}

/// One supervisor→parent message.
enum SupMsg {
    /// An attempt failed; the supervisor retries iff `will_retry`.
    Failed {
        worker: usize,
        attempt: u32,
        cause: String,
        will_retry: bool,
    },
    /// The worker slot delivered its payload.
    Done {
        worker: usize,
        payload: Box<WorkerPayload>,
    },
    /// The worker slot exhausted its retry budget.
    Fatal { error: MpError },
}

/// Run one worker attempt end to end: spawn, feed the request, relay
/// stderr with a `[worker N]` tag, await the payload (optionally under a
/// deadline), classify any failure.
fn run_attempt(
    exe: &Path,
    req_json: &str,
    worker: usize,
    timeout: Option<Duration>,
) -> Result<WorkerPayload, MpFailure> {
    let mut child = Command::new(exe)
        .arg(WORKER_ARG)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(MpFailure::Spawn)?;

    // Line-tagging stderr relay: concurrent workers' diagnostics (and
    // panics) interleave on the parent's stderr line-by-line, each line
    // attributable to its worker.
    let stderr = child.stderr.take().expect("stderr is piped");
    let relay = std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            match line {
                Ok(line) => eprintln!("[worker {worker}] {line}"),
                Err(_) => break,
            }
        }
    });

    // Feed the request. A worker that died before reading gives a pipe
    // error here; the exit status (checked below) is the primary cause.
    let mut stdin = child.stdin.take().expect("stdin is piped");
    let write_result = stdin
        .write_all(req_json.as_bytes())
        .and_then(|()| stdin.flush());
    drop(stdin); // EOF: the worker's read_to_string returns

    // Read the payload on a helper thread so a deadline can interrupt
    // the wait (there is no portable non-blocking pipe read in std).
    let stdout = child.stdout.take().expect("stdout is piped");
    let (payload_tx, payload_rx) = mpsc::channel::<std::io::Result<String>>();
    let reader = std::thread::spawn(move || {
        let mut json = String::new();
        let result = {
            let mut stdout = stdout;
            stdout.read_to_string(&mut json).map(|_| json)
        };
        let _ = payload_tx.send(result);
    });

    let read = match timeout {
        None => payload_rx.recv().unwrap_or_else(|_| {
            Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "payload reader thread died",
            ))
        }),
        Some(deadline) => match payload_rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = reader.join();
                let _ = relay.join();
                return Err(MpFailure::Hung { timeout: deadline });
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "payload reader thread died",
            )),
        },
    };
    let status = child.wait().map_err(MpFailure::Wait)?;
    let _ = reader.join();
    let _ = relay.join();

    if !status.success() {
        return Err(MpFailure::Crashed {
            code: status.code(),
        });
    }
    if let Err(e) = write_result {
        return Err(MpFailure::RequestWrite(e));
    }
    let json = read.map_err(MpFailure::PayloadRead)?;
    serde_json::from_str(&json).map_err(|e| MpFailure::Malformed {
        detail: format!("{e:?}"),
        payload_bytes: json.len(),
    })
}

/// The per-slot supervisor loop: bounded-retry [`run_attempt`] with
/// exponential backoff, reporting every outcome to the parent channel.
fn supervise_worker(
    exe: &Path,
    mut req: WorkerRequest,
    units_desc: &str,
    max_retries: u32,
    timeout: Option<Duration>,
    tx: &mpsc::Sender<SupMsg>,
) {
    let worker = req.index;
    let mut attempt = 0u32;
    loop {
        req.attempt = attempt;
        let req_json = match serde_json::to_string(&req) {
            Ok(json) => json,
            Err(e) => {
                let _ = tx.send(SupMsg::Fatal {
                    error: MpError::Internal(format!("serialize worker {worker} request: {e:?}")),
                });
                return;
            }
        };
        match run_attempt(exe, &req_json, worker, timeout) {
            Ok(payload) => {
                let _ = tx.send(SupMsg::Done {
                    worker,
                    payload: Box::new(payload),
                });
                return;
            }
            Err(failure) => {
                let will_retry = attempt < max_retries;
                let _ = tx.send(SupMsg::Failed {
                    worker,
                    attempt,
                    cause: failure.to_string(),
                    will_retry,
                });
                if !will_retry {
                    let _ = tx.send(SupMsg::Fatal {
                        error: MpError::RetriesExhausted {
                            worker,
                            units: units_desc.to_string(),
                            attempts: attempt + 1,
                            last: failure,
                        },
                    });
                    return;
                }
                std::thread::sleep(retry_backoff(attempt));
                attempt += 1;
            }
        }
    }
}

/// The supervised multi-process engine driver (any configuration with
/// `processes > 1`, a checkpoint sink, or a resume source): blueprint +
/// discovery here, probing in spawned workers under per-slot
/// supervisors, incremental checkpointing, hierarchical merge of the
/// payloads. Byte-identical to the in-process engine for any process
/// count, retry schedule, or resume partition.
pub(crate) fn run_multiprocess<S: Subscriber>(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
    subscriber: &mut S,
) -> Result<EngineRun, MpError> {
    let wall0 = Instant::now();
    let mut timing = EngineTiming::default();
    let plan = plan_with_churn(plan, cfg);
    let faults = FaultPlan::from_env();
    if !faults.is_empty() {
        eprintln!("mp: ECNUDP_FAULT is set — fault injection active");
    }

    // Phase 1–2 (parent): blueprint + discovery, exactly as in-process.
    let t0 = Instant::now();
    let bp = WorldBlueprint::build(&plan, cfg.seed);
    timing.blueprint_build = t0.elapsed();
    let t0 = Instant::now();
    let mut disco_world = bp.instantiate();
    let discovery = discover_in(&mut disco_world, cfg);
    timing.discovery = t0.elapsed();
    let targets = discovery.targets.clone();

    let vantage_count = disco_world.vantages.len();
    let chunks = eng.target_chunks.max(1);
    let total_units = vantage_count * chunks;
    let fingerprint = campaign_fingerprint(&plan, cfg, chunks)?;

    // Resume: load, verify identity, seed the merge with saved state.
    let mut completed: BTreeSet<usize> = BTreeSet::new();
    let mut merged_parts: Vec<ShardReducers> = Vec::new();
    if let Some(resume_path) = &eng.resume {
        let ck = read_checkpoint(resume_path)?;
        let mismatch = |detail: String| MpError::Checkpoint {
            path: resume_path.clone(),
            detail,
        };
        if ck.fingerprint != fingerprint {
            return Err(mismatch(format!(
                "belongs to a different campaign (fingerprint {:#018x}, this run is {:#018x}); \
                 resume must use the same scenario, seed, and target_chunks",
                ck.fingerprint, fingerprint
            )));
        }
        if ck.unit_count != total_units {
            return Err(mismatch(format!(
                "records {} units, this campaign has {total_units}",
                ck.unit_count
            )));
        }
        if let Some(&bad) = ck.completed.iter().find(|&&i| i >= total_units) {
            return Err(mismatch(format!(
                "completed unit index {bad} out of range (unit count {total_units})"
            )));
        }
        completed = ck.completed.iter().copied().collect();
        eprintln!(
            "resuming from {}: {}/{} units already complete",
            resume_path.display(),
            completed.len(),
            total_units
        );
        merged_parts.push(ck.aggregates);
    }
    let skip: Vec<usize> = completed.iter().copied().collect();
    let remaining = total_units - completed.len();

    if S::ENABLED {
        subscriber.on_event(&Event::CampaignStarted {
            vantages: vantage_count,
            units: remaining,
            targets: targets.len(),
        });
    }

    let requested = eng.processes.max(1);
    let processes = clamped_processes(requested, remaining);
    if processes < requested {
        eprintln!(
            "mp: clamping {requested} worker processes to {processes} \
             ({remaining} unit(s) to run)"
        );
        if S::ENABLED {
            subscriber.on_event(&Event::WorkersClamped {
                requested,
                spawned: processes,
            });
        }
    }

    let mut units_run = 0usize;
    let mut shards = 0usize;
    let mut peak_resident_traces = 0usize;
    let mut peak_rss = 0u64;
    let mut worker_merge_depth = 0usize;
    let mut fatal: Option<MpError> = None;

    if processes > 0 {
        let exe = worker_exe()?;
        let assignments = partition_assignments(total_units, &completed, processes);
        let unit_descs: Vec<String> = assignments
            .iter()
            .map(|a| describe_units(a, total_units))
            .collect();
        let timeout = eng.worker_timeout;
        let max_retries = eng.max_worker_retries;

        // One supervisor thread per worker slot; the parent thread sits
        // in the channel, merging payloads as they land (and writing the
        // checkpoint after each) so a crash of the *parent* loses at
        // most the in-flight workers.
        let (tx, rx) = mpsc::channel::<SupMsg>();
        let mut payloads_merged = 0usize;
        crossbeam::thread::scope(|scope| {
            for (index, units_desc) in unit_descs.iter().enumerate() {
                let tx = tx.clone();
                let exe = &exe;
                let req = WorkerRequest {
                    plan: plan.clone(),
                    cfg: *cfg,
                    targets: targets.clone(),
                    target_chunks: eng.target_chunks,
                    shards: eng.shards,
                    unit_order: eng.unit_order,
                    processes,
                    index,
                    skip: skip.clone(),
                    attempt: 0,
                };
                scope.spawn(move |_| {
                    supervise_worker(exe, req, units_desc, max_retries, timeout, &tx);
                });
            }
            drop(tx);

            let mut pending = processes;
            while pending > 0 {
                let msg = match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break, // all supervisors gone
                };
                match msg {
                    SupMsg::Failed {
                        worker,
                        attempt,
                        cause,
                        will_retry,
                    } => {
                        eprintln!(
                            "mp: worker {worker} attempt {attempt} failed ({cause}); {}",
                            if will_retry {
                                "retrying its unit slice"
                            } else {
                                "retry budget exhausted"
                            }
                        );
                        if S::ENABLED {
                            subscriber.on_event(&Event::WorkerFailed {
                                worker,
                                attempt,
                                units: assignments[worker].len(),
                                cause: &cause,
                                will_retry,
                            });
                            if will_retry {
                                for &ci in &assignments[worker] {
                                    subscriber.on_event(&Event::UnitRetried {
                                        unit: UnitId {
                                            vantage: ci / chunks,
                                            chunk: ci % chunks,
                                        },
                                        worker,
                                        attempt: attempt + 1,
                                    });
                                }
                            }
                        }
                    }
                    SupMsg::Done { worker, payload } => {
                        pending -= 1;
                        units_run += payload.units;
                        shards += payload.shards;
                        peak_resident_traces =
                            peak_resident_traces.max(payload.peak_resident_traces);
                        peak_rss = peak_rss.max(payload.peak_rss_kb);
                        worker_merge_depth = worker_merge_depth.max(merge_depth(payload.shards));
                        timing.instantiate += payload.timing.instantiate;
                        timing.probe += payload.timing.probe;
                        timing.reduce += payload.timing.reduce;
                        if S::ENABLED {
                            subscriber.on_event(&Event::WorkerFinished {
                                worker,
                                units: payload.units,
                                observations: payload.counters.observations,
                            });
                        }
                        completed.extend(assignments[worker].iter().copied());
                        merged_parts.push(payload.aggregates);
                        payloads_merged += 1;
                        if let Some(ck_path) = &eng.checkpoint {
                            let ck = Checkpoint {
                                version: CHECKPOINT_VERSION,
                                fingerprint,
                                unit_count: total_units,
                                completed: completed.iter().copied().collect(),
                                aggregates: merge_tree(merged_parts.clone()),
                            };
                            if let Err(e) = write_checkpoint(ck_path, &ck) {
                                fatal.get_or_insert(e);
                            } else if S::ENABLED {
                                subscriber.on_event(&Event::CheckpointWritten {
                                    completed_units: completed.len(),
                                    total_units,
                                });
                            }
                        }
                        if faults.parent_exit_after_payloads == Some(payloads_merged) {
                            eprintln!("[fault] parent exiting after {payloads_merged} payload(s)");
                            std::process::exit(PARENT_EXIT_CODE);
                        }
                    }
                    SupMsg::Fatal { error } => {
                        pending -= 1;
                        fatal.get_or_insert(error);
                    }
                }
            }
        })
        .map_err(|_| MpError::Internal("a supervisor thread panicked".into()))?;
    }

    if let Some(error) = fatal {
        return Err(error);
    }

    // Phase 5 (parent): hierarchical merge of resumed state + payloads.
    let t0 = Instant::now();
    let part_count = merged_parts.len();
    let aggregates = merge_tree(merged_parts);
    timing.reduce += t0.elapsed();
    timing.wall = wall0.elapsed();

    let result = finish(
        disco_world,
        targets,
        DiscoveryStats::from(&discovery),
        Vec::new(),
        Vec::new(),
        aggregates,
    );
    Ok(EngineRun {
        result,
        timing,
        shards,
        units: units_run,
        peak_resident_traces,
        processes: processes.max(1),
        merge_depth: worker_merge_depth + merge_depth(part_count),
        peak_rss_kb: peak_rss.max(self::peak_rss_kb()),
    })
}

/// This process's peak resident set size (`VmHWM`) in kB, from
/// `/proc/self/status`. A per-process high-water mark: it only ever
/// grows, which is exactly the gauge the megapool memory claim needs
/// (each process reports its own ceiling). Returns 0 where procfs is
/// unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_request(processes: usize, index: usize) -> WorkerRequest {
        WorkerRequest {
            plan: PoolPlan::scaled(24),
            cfg: CampaignConfig::quick(7),
            targets: Vec::new(),
            target_chunks: 3,
            shards: Some(2),
            unit_order: UnitOrder::AsScheduled,
            processes,
            index,
            skip: Vec::new(),
            attempt: 0,
        }
    }

    #[test]
    fn round_robin_partition_covers_every_canonical_unit_once() {
        // union over workers == canonical list, pairwise disjoint
        for processes in 1..=5usize {
            let mut seen = [0u32; 13 * 3];
            for index in 0..processes {
                let mut req = bare_request(processes, index);
                req.target_chunks = 3;
                for u in worker_partition(&req, 13, 3) {
                    seen[u.vantage * 3 + u.chunk] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "partition must be exact for P = {processes}"
            );
        }
    }

    #[test]
    fn partition_with_skip_covers_exactly_the_remaining_units() {
        // parent-side assignment and worker-side partition must agree
        let total = 13 * 2;
        let completed: BTreeSet<usize> = [0usize, 3, 4, 7, 20].into_iter().collect();
        for processes in 1..=4usize {
            let assignments = partition_assignments(total, &completed, processes);
            let mut seen = vec![0u32; total];
            for (index, assigned) in assignments.iter().enumerate() {
                let mut req = bare_request(processes, index);
                req.target_chunks = 2;
                req.skip = completed.iter().copied().collect();
                let units = worker_partition(&req, 13, 2);
                assert_eq!(
                    units.len(),
                    assigned.len(),
                    "worker {index}/{processes} slice size"
                );
                for (u, &ci) in units.iter().zip(assigned) {
                    assert_eq!(u.vantage * 2 + u.chunk, ci, "canonical index mismatch");
                    seen[ci] += 1;
                }
            }
            for (ci, &n) in seen.iter().enumerate() {
                let expect = u32::from(!completed.contains(&ci));
                assert_eq!(n, expect, "unit {ci} coverage at P = {processes}");
            }
        }
    }

    #[test]
    fn request_and_payload_round_trip() {
        let req = WorkerRequest {
            plan: PoolPlan::scaled(24),
            cfg: CampaignConfig::quick(7),
            targets: vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)],
            target_chunks: 3,
            shards: Some(2),
            unit_order: UnitOrder::Shuffled(9),
            processes: 4,
            index: 2,
            skip: vec![1, 5, 9],
            attempt: 3,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: WorkerRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);

        let counters = WorkerCounters {
            observations: 5,
            delivered: 17,
            dropped: [("loss".to_string(), 2u64)].into_iter().collect(),
            ..WorkerCounters::default()
        };
        let payload = WorkerPayload {
            aggregates: ShardReducers::default(),
            units: 6,
            shards: 2,
            timing: EngineTiming::default(),
            peak_resident_traces: 0,
            peak_rss_kb: 1234,
            counters,
        };
        let json = serde_json::to_string(&payload).unwrap();
        let back: WorkerPayload = serde_json::from_str(&json).unwrap();
        assert_eq!(back.units, 6);
        assert_eq!(back.peak_rss_kb, 1234);
        assert_eq!(back.counters.dropped["loss"], 2);
        assert_eq!(back.counters, payload.counters);
    }

    #[test]
    fn checkpoint_round_trips_through_the_atomic_writer() {
        let dir = std::env::temp_dir().join(format!("ecnudp-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ck");
        let ck = Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: 0xdead_beef,
            unit_count: 26,
            completed: vec![0, 3, 7],
            aggregates: ShardReducers::default(),
        };
        write_checkpoint(&path, &ck).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back.fingerprint, 0xdead_beef);
        assert_eq!(back.unit_count, 26);
        assert_eq!(back.completed, vec![0, 3, 7]);
        // overwrite is atomic-by-rename: a second write replaces cleanly
        write_checkpoint(&path, &ck).unwrap();
        assert!(read_checkpoint(&path).is_ok());
        // version gate
        let mut old = ck.clone();
        old.version = 99;
        write_checkpoint(&path, &old).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("schema version 99"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_pins_plan_config_and_chunking() {
        let plan = PoolPlan::scaled(24);
        let cfg = CampaignConfig::quick(7);
        let base = campaign_fingerprint(&plan, &cfg, 2).unwrap();
        assert_eq!(base, campaign_fingerprint(&plan, &cfg, 2).unwrap());
        assert_ne!(base, campaign_fingerprint(&plan, &cfg, 3).unwrap());
        let other_cfg = CampaignConfig::quick(8);
        assert_ne!(base, campaign_fingerprint(&plan, &other_cfg, 2).unwrap());
        let other_plan = PoolPlan::scaled(25);
        assert_ne!(base, campaign_fingerprint(&other_plan, &cfg, 2).unwrap());
    }

    #[test]
    fn backoff_is_bounded_and_monotone() {
        let mut last = Duration::ZERO;
        for attempt in 0..10 {
            let b = retry_backoff(attempt);
            assert!(b >= last, "backoff must not shrink");
            assert!(b <= Duration::from_secs(2), "backoff is capped");
            last = b;
        }
        assert_eq!(retry_backoff(0), Duration::from_millis(50));
    }

    #[test]
    fn worker_count_clamps_to_the_unit_pool() {
        // the satellite boundary: 1 unit, 8 requested processes → 1 worker
        assert_eq!(clamped_processes(8, 1), 1);
        assert_eq!(clamped_processes(8, 0), 0, "nothing left → no workers");
        assert_eq!(clamped_processes(2, 13), 2, "under-provisioned is kept");
        assert_eq!(clamped_processes(13, 13), 13);
        // and the clamped count still partitions every unit exactly once
        let assigned = partition_assignments(1, &BTreeSet::new(), clamped_processes(8, 1));
        assert_eq!(assigned, vec![vec![0]]);
    }

    #[test]
    fn error_display_names_worker_and_units() {
        let err = MpError::RetriesExhausted {
            worker: 3,
            units: describe_units(&[3, 7, 11], 13),
            attempts: 4,
            last: MpFailure::Crashed { code: Some(101) },
        };
        let msg = err.to_string();
        assert!(msg.contains("worker 3"), "{msg}");
        assert!(msg.contains("4 attempt(s)"), "{msg}");
        assert!(msg.contains("3 of 13 unit(s)"), "{msg}");
        assert!(msg.contains("[3, 7, 11]"), "{msg}");
        assert!(msg.contains("exit code 101"), "{msg}");
    }

    #[test]
    fn in_process_worker_partitions_merge_to_the_full_campaign() {
        // Drive run_worker directly (no spawning): merging every
        // partition's aggregates must equal the single-process campaign.
        let plan = PoolPlan::scaled(24);
        let cfg = CampaignConfig {
            discovery_rounds: 20,
            traces_per_vantage: Some(1),
            run_traceroute: false,
            ..CampaignConfig::quick(11)
        };
        // target_chunks is a *world-shaping* knob (each chunk probes from
        // its own unit world), so the baseline must use the same chunking
        // as the workers; processes/shards/orders are the invariant axes.
        let baseline = crate::engine::run_engine(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(2),
                target_chunks: 2,
                ..EngineConfig::default()
            },
        );
        let targets = baseline.result.targets.clone();
        let processes = 3;
        let payloads: Vec<WorkerPayload> = (0..processes)
            .map(|index| {
                run_worker(&WorkerRequest {
                    plan: plan_with_churn(&plan, &cfg),
                    cfg,
                    targets: targets.clone(),
                    target_chunks: 2,
                    shards: Some(2),
                    unit_order: UnitOrder::Reversed,
                    processes,
                    index,
                    skip: Vec::new(),
                    attempt: 0,
                })
            })
            .collect();
        let total_units: usize = payloads.iter().map(|p| p.units).sum();
        assert_eq!(total_units, 13 * 2, "every (vantage × chunk) unit ran once");
        let observations: u64 = payloads.iter().map(|p| p.counters.observations).sum();
        assert_eq!(observations, 13 * targets.len() as u64);
        assert!(payloads.iter().all(|p| p.counters.delivered > 0));
        let merged = merge_tree(payloads.into_iter().map(|p| p.aggregates).collect());
        assert_eq!(merged, baseline.result.aggregates);
    }
}
