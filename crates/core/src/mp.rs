//! Multi-process shard mode: partition the engine's unit pool across
//! child **processes**, each running its own work-stealing shard pool,
//! and tree-merge their serialized reducers in the parent.
//!
//! ## Why processes
//!
//! Shards bound wall-clock; processes bound *memory*. Every reducer map
//! a shard touches lives until the final merge, so a megapool campaign
//! (10⁵–10⁶ servers) concentrates O(vantages × servers) of keyed state —
//! plus every concurrently instantiated unit world — in one address
//! space. The reducer contract (commutative, associative merge) was
//! designed so shards can live anywhere; this module puts them behind a
//! pipe: each worker holds only its partition's worlds and partial
//! aggregates, and the parent's high-water mark stays at discovery +
//! merged aggregates.
//!
//! ## Worker protocol
//!
//! The parent spawns `processes` children running the **same binary**
//! with the single argument [`WORKER_ARG`] (binaries opt in by calling
//! [`maybe_worker`] first thing in `main`; tests point
//! [`WORKER_EXE_ENV`] at the `ecnudp` binary instead). Each child reads
//! one [`WorkerRequest`] as JSON on stdin, runs its round-robin
//! partition of the canonical unit list — canonical index `i` belongs to
//! worker `i % processes` — and writes one [`WorkerPayload`] as JSON on
//! stdout: its tree-merged [`ShardReducers`], timing breakdown, peak-RSS
//! gauge, and an event-stream summary ([`WorkerCounters`]: observation
//! totals plus the netsim [`SimCounters`] tap, string-keyed for the
//! wire). stderr is inherited, so worker panics surface verbatim.
//!
//! Workers skip discovery entirely: the parent runs it once and ships
//! the target list in the request. A worker only needs the blueprint
//! (rebuilt from the same plan + seed, bit-identical by construction)
//! and the per-vantage schedule, which is world-clock-independent.
//!
//! ## Determinism
//!
//! The partition is over *canonical* unit indices, reducers are
//! commutative and associative, and every unit's RNG domain derives from
//! its identity — so process count, like shard count and stealing order,
//! cannot change any result byte. `tests/process_determinism.rs`
//! enforces byte-identical `FullReport::render` across
//! processes × shards × unit orders.

use crate::campaign::{discover_in, finish, plan_with_churn, DiscoveryStats};
use crate::config::CampaignConfig;
use crate::engine::{
    apply_unit_order, canonical_units, per_vantage_schedule, run_unit_pool, EngineConfig,
    EngineRun, EngineTiming, UnitOrder,
};
use crate::events::{Event, Subscriber};
use crate::reducers::{merge_depth, merge_tree, ShardReducers};
use ecn_netsim::SimCounters;
use ecn_pool::{PoolPlan, WorldBlueprint};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::Ipv4Addr;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// The hidden argv[1] that switches a cooperating binary into worker
/// mode (see [`maybe_worker`]). Deliberately not a `--flag`: it can
/// never collide with user-facing CLI surface.
pub const WORKER_ARG: &str = "__mp-worker";

/// Environment override for the worker executable. Defaults to
/// `std::env::current_exe()` (self-spawn); set this to the `ecnudp`
/// binary from contexts whose own executable has no worker hook (the
/// libtest harness cannot intercept `main`).
pub const WORKER_EXE_ENV: &str = "ECNUDP_WORKER_EXE";

/// Everything a worker needs to run its partition, shipped as JSON on
/// its stdin. The plan already carries the churn pin
/// (`plan_with_churn`), and `targets` is the parent's discovery result —
/// workers never re-discover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerRequest {
    /// The churned pool plan (world definition).
    pub plan: PoolPlan,
    /// The campaign methodology configuration.
    pub cfg: CampaignConfig,
    /// Discovered probe targets, in probing order.
    pub targets: Vec<Ipv4Addr>,
    /// Target-list chunks per vantage.
    pub target_chunks: usize,
    /// Shards per worker (`None` = the worker's available parallelism).
    pub shards: Option<usize>,
    /// Unit scheduling order within the worker's partition.
    pub unit_order: UnitOrder,
    /// Total worker processes.
    pub processes: usize,
    /// This worker's index in `0..processes`.
    pub index: usize,
}

/// Event-stream summary a worker sends home: observation totals plus the
/// merged netsim counters, re-keyed as owned `String`s (the in-process
/// [`SimCounters`] uses `&'static str` / `Arc<str>` keys, which cannot
/// cross a serialization boundary).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerCounters {
    /// Server observations produced (Σ unit traces × chunk targets).
    pub observations: u64,
    /// Datagrams delivered end-to-end.
    pub delivered: u64,
    /// Datagrams dropped, by cause label.
    pub dropped: BTreeMap<String, u64>,
    /// CE congestion marks applied.
    pub ce_marked: u64,
    /// ECN rewrites observed, by hop label.
    pub ecn_rewritten: BTreeMap<String, u64>,
}

impl WorkerCounters {
    fn absorb_sim(&mut self, c: &SimCounters) {
        self.delivered += c.delivered;
        for (k, v) in &c.dropped {
            *self.dropped.entry((*k).to_string()).or_default() += v;
        }
        self.ce_marked += c.ce_marked;
        for (k, v) in &c.ecn_rewritten {
            *self.ecn_rewritten.entry(k.to_string()).or_default() += v;
        }
    }

    /// Merge another summary (commutative, like everything on the wire).
    pub fn merge(&mut self, other: &WorkerCounters) {
        self.observations += other.observations;
        self.delivered += other.delivered;
        for (k, v) in &other.dropped {
            *self.dropped.entry(k.clone()).or_default() += v;
        }
        self.ce_marked += other.ce_marked;
        for (k, v) in &other.ecn_rewritten {
            *self.ecn_rewritten.entry(k.clone()).or_default() += v;
        }
    }
}

/// One worker's results, shipped as JSON on its stdout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPayload {
    /// The worker's tree-merged partial aggregates.
    pub aggregates: ShardReducers,
    /// Units the worker executed.
    pub units: usize,
    /// Shards the worker actually used.
    pub shards: usize,
    /// The worker's phase timing (blueprint + instantiate/probe/reduce).
    pub timing: EngineTiming,
    /// Peak retained `TraceRecord`s (always 0: workers never keep raw
    /// records).
    pub peak_resident_traces: usize,
    /// The worker process's `VmHWM` in kB (0 off-Linux).
    pub peak_rss_kb: u64,
    /// Event-stream summary (observations + netsim counters).
    pub counters: WorkerCounters,
}

/// The worker-side event collector: taps every unit's [`SimCounters`]
/// drain and observation totals. Enabled (`ENABLED = true`) but purely
/// observational, so worker results stay byte-identical to an
/// unobserved run — the process-determinism suite proves it.
#[derive(Default)]
struct WorkerTap {
    counters: WorkerCounters,
}

impl Subscriber for WorkerTap {
    fn fork(&self) -> Self {
        WorkerTap::default()
    }

    fn on_event(&mut self, event: &Event<'_>) {
        match event {
            Event::SimFlushed { counters, .. } => self.counters.absorb_sim(counters),
            Event::UnitFinished { observations, .. } => {
                self.counters.observations += *observations as u64;
            }
            _ => {}
        }
    }

    fn merge(&mut self, other: Self) {
        self.counters.merge(&other.counters);
    }
}

/// Execute one worker request (the body of worker mode; separated so
/// tests can drive the partition logic in-process).
pub fn run_worker(req: &WorkerRequest) -> WorkerPayload {
    let mut timing = EngineTiming::default();
    let t0 = Instant::now();
    let bp = WorldBlueprint::build(&req.plan, req.cfg.seed);
    timing.blueprint_build = t0.elapsed();

    // A fresh world only for vantage specs and the (clock-independent)
    // schedule; no discovery, no probing happens in it.
    let sched_world = bp.instantiate();
    let vantage_count = sched_world.vantages.len();
    let per_vantage_sched = per_vantage_schedule(&sched_world, &req.cfg, vantage_count);
    drop(sched_world);

    let chunks = req.target_chunks.max(1);
    let processes = req.processes.max(1);
    let mut units = canonical_units(vantage_count, chunks);
    let mut i = 0usize;
    units.retain(|_| {
        let mine = i % processes == req.index;
        i += 1;
        mine
    });
    apply_unit_order(&mut units, req.unit_order);
    let unit_count = units.len();

    let eng = EngineConfig {
        shards: req.shards,
        ..EngineConfig::default()
    };
    let mut tap = WorkerTap::default();
    let wall0 = Instant::now();
    let pool = run_unit_pool(
        &bp,
        &req.targets,
        &per_vantage_sched,
        units,
        chunks,
        &req.cfg,
        &eng,
        &mut tap,
        &mut timing,
    );
    timing.wall = wall0.elapsed();
    WorkerPayload {
        aggregates: pool.reducers,
        units: unit_count,
        shards: pool.shard_count,
        timing,
        peak_resident_traces: pool.peak_resident_traces,
        peak_rss_kb: peak_rss_kb(),
        counters: tap.counters,
    }
}

/// Worker mode entry point: if this process was spawned as a worker
/// (`argv[1]` == [`WORKER_ARG`]), serve one request over stdin/stdout
/// and return an exit code to bubble out of `main`; otherwise `None`.
/// Cooperating binaries (the `ecnudp` CLI, the bench harnesses) call
/// this before any argument parsing.
pub fn maybe_worker() -> Option<std::process::ExitCode> {
    if std::env::args().nth(1).as_deref() != Some(WORKER_ARG) {
        return None;
    }
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("mp worker: cannot read request: {e}");
        return Some(std::process::ExitCode::FAILURE);
    }
    let req: WorkerRequest = match serde_json::from_str(&input) {
        Ok(req) => req,
        Err(e) => {
            eprintln!("mp worker: malformed request: {e:?}");
            return Some(std::process::ExitCode::FAILURE);
        }
    };
    let payload = run_worker(&req);
    let json = match serde_json::to_string(&payload) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("mp worker: cannot serialize payload: {e:?}");
            return Some(std::process::ExitCode::FAILURE);
        }
    };
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(json.as_bytes()).and_then(|()| out.flush()) {
        eprintln!("mp worker: cannot write payload: {e}");
        return Some(std::process::ExitCode::FAILURE);
    }
    Some(std::process::ExitCode::SUCCESS)
}

/// Resolve the worker executable: [`WORKER_EXE_ENV`] override, else this
/// very binary.
fn worker_exe() -> std::path::PathBuf {
    std::env::var_os(WORKER_EXE_ENV)
        .map(Into::into)
        .unwrap_or_else(|| std::env::current_exe().expect("mp: current_exe for worker spawn"))
}

/// The multi-process engine driver (`EngineConfig::processes > 1`):
/// blueprint + discovery here, probing in `processes` spawned workers,
/// hierarchical merge of their payloads. Byte-identical to the
/// in-process engine for any process count.
pub(crate) fn run_multiprocess(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
) -> EngineRun {
    let wall0 = Instant::now();
    let mut timing = EngineTiming::default();
    let plan = plan_with_churn(plan, cfg);
    let processes = eng.processes;

    // Phase 1–2 (parent): blueprint + discovery, exactly as in-process.
    let t0 = Instant::now();
    let bp = WorldBlueprint::build(&plan, cfg.seed);
    timing.blueprint_build = t0.elapsed();
    let t0 = Instant::now();
    let mut disco_world = bp.instantiate();
    let discovery = discover_in(&mut disco_world, cfg);
    timing.discovery = t0.elapsed();
    let targets = discovery.targets.clone();

    // Phase 3–4 (workers): spawn first, then feed; children probe their
    // partitions concurrently while the parent sits in blocking reads.
    let exe = worker_exe();
    let children: Vec<Child> = (0..processes)
        .map(|index| {
            let req = WorkerRequest {
                plan: plan.clone(),
                cfg: *cfg,
                targets: targets.clone(),
                target_chunks: eng.target_chunks,
                shards: eng.shards,
                unit_order: eng.unit_order,
                processes,
                index,
            };
            let mut child = Command::new(&exe)
                .arg(WORKER_ARG)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| panic!("mp: spawn worker {index} ({}): {e}", exe.display()));
            let json = serde_json::to_string(&req).expect("mp: serialize request");
            let mut stdin = child.stdin.take().expect("mp: worker stdin is piped");
            stdin
                .write_all(json.as_bytes())
                .and_then(|()| stdin.flush())
                .unwrap_or_else(|e| panic!("mp: write request to worker {index}: {e}"));
            drop(stdin); // EOF: the worker's read_to_string returns
            child
        })
        .collect();
    let payloads: Vec<WorkerPayload> = children
        .into_iter()
        .enumerate()
        .map(|(index, mut child)| {
            let mut json = String::new();
            child
                .stdout
                .take()
                .expect("mp: worker stdout is piped")
                .read_to_string(&mut json)
                .unwrap_or_else(|e| panic!("mp: read payload from worker {index}: {e}"));
            let status = child
                .wait()
                .unwrap_or_else(|e| panic!("mp: wait for worker {index}: {e}"));
            assert!(
                status.success(),
                "mp: worker {index} failed ({status}); its stderr is above"
            );
            serde_json::from_str(&json)
                .unwrap_or_else(|e| panic!("mp: malformed payload from worker {index}: {e:?}"))
        })
        .collect();

    // Phase 5 (parent): hierarchical merge of the worker payloads.
    let t0 = Instant::now();
    let mut units = 0;
    let mut shards = 0;
    let mut peak_resident_traces = 0;
    let mut peak_rss_kb = 0u64;
    let mut worker_merge_depth = 0;
    for p in &payloads {
        units += p.units;
        shards += p.shards;
        peak_resident_traces = peak_resident_traces.max(p.peak_resident_traces);
        peak_rss_kb = peak_rss_kb.max(p.peak_rss_kb);
        worker_merge_depth = worker_merge_depth.max(merge_depth(p.shards));
        timing.instantiate += p.timing.instantiate;
        timing.probe += p.timing.probe;
        timing.reduce += p.timing.reduce;
    }
    let aggregates = merge_tree(payloads.into_iter().map(|p| p.aggregates).collect());
    timing.reduce += t0.elapsed();
    timing.wall = wall0.elapsed();

    let result = finish(
        disco_world,
        targets,
        DiscoveryStats::from(&discovery),
        Vec::new(),
        Vec::new(),
        aggregates,
    );
    EngineRun {
        result,
        timing,
        shards,
        units,
        peak_resident_traces,
        processes,
        merge_depth: worker_merge_depth + merge_depth(processes),
        peak_rss_kb: peak_rss_kb.max(self::peak_rss_kb()),
    }
}

/// This process's peak resident set size (`VmHWM`) in kB, from
/// `/proc/self/status`. A per-process high-water mark: it only ever
/// grows, which is exactly the gauge the megapool memory claim needs
/// (each process reports its own ceiling). Returns 0 where procfs is
/// unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partition_covers_every_canonical_unit_once() {
        // union over workers == canonical list, pairwise disjoint
        for processes in 1..=5usize {
            let mut seen = vec![0u32; 13 * 3];
            for index in 0..processes {
                let mut i = 0usize;
                let mut units = canonical_units(13, 3);
                units.retain(|_| {
                    let mine = i % processes == index;
                    i += 1;
                    mine
                });
                for u in units {
                    seen[u.vantage * 3 + u.chunk] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "partition must be exact for P = {processes}"
            );
        }
    }

    #[test]
    fn request_and_payload_round_trip() {
        let req = WorkerRequest {
            plan: PoolPlan::scaled(24),
            cfg: CampaignConfig::quick(7),
            targets: vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)],
            target_chunks: 3,
            shards: Some(2),
            unit_order: UnitOrder::Shuffled(9),
            processes: 4,
            index: 2,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: WorkerRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);

        let mut counters = WorkerCounters::default();
        counters.observations = 5;
        counters.delivered = 17;
        counters.dropped.insert("loss".into(), 2);
        let payload = WorkerPayload {
            aggregates: ShardReducers::default(),
            units: 6,
            shards: 2,
            timing: EngineTiming::default(),
            peak_resident_traces: 0,
            peak_rss_kb: 1234,
            counters,
        };
        let json = serde_json::to_string(&payload).unwrap();
        let back: WorkerPayload = serde_json::from_str(&json).unwrap();
        assert_eq!(back.units, 6);
        assert_eq!(back.peak_rss_kb, 1234);
        assert_eq!(back.counters.dropped["loss"], 2);
        assert_eq!(back.counters, payload.counters);
    }

    #[test]
    fn in_process_worker_partitions_merge_to_the_full_campaign() {
        // Drive run_worker directly (no spawning): merging every
        // partition's aggregates must equal the single-process campaign.
        let plan = PoolPlan::scaled(24);
        let cfg = CampaignConfig {
            discovery_rounds: 20,
            traces_per_vantage: Some(1),
            run_traceroute: false,
            ..CampaignConfig::quick(11)
        };
        // target_chunks is a *world-shaping* knob (each chunk probes from
        // its own unit world), so the baseline must use the same chunking
        // as the workers; processes/shards/orders are the invariant axes.
        let baseline = crate::engine::run_engine(
            &plan,
            &cfg,
            &EngineConfig {
                shards: Some(2),
                target_chunks: 2,
                ..EngineConfig::default()
            },
        );
        let targets = baseline.result.targets.clone();
        let processes = 3;
        let payloads: Vec<WorkerPayload> = (0..processes)
            .map(|index| {
                run_worker(&WorkerRequest {
                    plan: plan_with_churn(&plan, &cfg),
                    cfg,
                    targets: targets.clone(),
                    target_chunks: 2,
                    shards: Some(2),
                    unit_order: UnitOrder::Reversed,
                    processes,
                    index,
                })
            })
            .collect();
        let total_units: usize = payloads.iter().map(|p| p.units).sum();
        assert_eq!(total_units, 13 * 2, "every (vantage × chunk) unit ran once");
        let observations: u64 = payloads.iter().map(|p| p.counters.observations).sum();
        assert_eq!(observations, 13 * targets.len() as u64);
        assert!(payloads.iter().all(|p| p.counters.delivered > 0));
        let merged = merge_tree(payloads.into_iter().map(|p| p.aggregates).collect());
        assert_eq!(merged, baseline.result.aggregates);
    }
}

