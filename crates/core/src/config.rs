//! Probe and campaign configuration (the §3 methodology constants).

use ecn_netsim::Nanos;
use ecn_wire::Ecn;
use serde::{Deserialize, Serialize};

/// Per-probe methodology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// UDP retransmissions after the initial request (paper: 5).
    pub udp_retries: u32,
    /// Timeout per UDP attempt (paper: 1 s).
    pub udp_timeout: Nanos,
    /// ECN codepoint used for marked probes (paper: ECT(0), "to match the
    /// typical marking used with ECN for TCP").
    pub ect_codepoint: Ecn,
    /// How long to wait for the TCP handshake before giving up.
    pub tcp_handshake_wait: Nanos,
    /// How long to wait for the HTTP response after the handshake.
    pub http_wait: Nanos,
    /// Polling quantum while waiting on TCP state.
    pub poll_quantum: Nanos,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            udp_retries: 5,
            udp_timeout: Nanos::from_secs(1),
            ect_codepoint: Ecn::Ect0,
            tcp_handshake_wait: Nanos::from_secs(10),
            http_wait: Nanos::from_secs(10),
            poll_quantum: Nanos::from_millis(100),
        }
    }
}

/// Traceroute parameters (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerouteConfig {
    /// Highest TTL probed.
    pub max_ttl: u8,
    /// Probes per TTL (classic traceroute sends 3).
    pub probes_per_ttl: u32,
    /// Wait per probe.
    pub probe_timeout: Nanos,
    /// Stop after this many consecutive unresponsive TTLs.
    pub stop_after_silent: u32,
    /// Marking on probe packets.
    pub ecn: Ecn,
    /// Base destination port (classic traceroute: 33434).
    pub base_port: u16,
}

impl Default for TracerouteConfig {
    fn default() -> Self {
        TracerouteConfig {
            max_ttl: 24,
            probes_per_ttl: 3,
            probe_timeout: Nanos::from_millis(400),
            stop_after_silent: 2,
            ecn: Ecn::Ect0,
            base_port: 33434,
        }
    }
}

/// Endpoint ECN validation pass (the modern-ECN scenario family): an
/// RFC 9000-style validation round run against each target through the
/// pool servers' validation echo service. `packets = 0` — the default —
/// disables the pass entirely: no packets, no RNG draws, no allocations,
/// byte-identical campaigns to pre-validator builds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Marked packets per validation round (0 = validation off).
    pub packets: u32,
    /// Send one deliberately CE-marked canary to detect CE suppression.
    pub ce_canary: bool,
    /// Vantages per 1000 marking with ECT(1) instead of ECT(0).
    pub ect1_per_1000: u32,
    /// Wait for echo reports after the train is sent.
    pub timeout: Nanos,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            packets: 0,
            ce_canary: true,
            ect1_per_1000: 0,
            timeout: Nanos::from_secs(1),
        }
    }
}

impl ValidationConfig {
    /// Is the validation pass active?
    pub fn enabled(&self) -> bool {
        self.packets > 0
    }
}

/// Campaign schedule (maps the paper's two collection batches onto virtual
/// time). Usually produced by [`crate::scenario_run::campaign_config`]
/// from a declarative [`ecn_pool::ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Scenario/randomness seed.
    pub seed: u64,
    /// Start of the April/May batch.
    pub batch1_start: Nanos,
    /// Start of the July/August batch (also the pool-churn boundary).
    pub batch2_start: Nanos,
    /// Window over which each batch's traces are spread.
    pub batch_window: Nanos,
    /// Probe methodology.
    pub probe: ProbeConfig,
    /// Traceroute methodology.
    pub traceroute: TracerouteConfig,
    /// DNS discovery rounds (each round queries every pool zone name once).
    pub discovery_rounds: usize,
    /// Gap between discovery queries (paper: 1 s).
    pub discovery_gap: Nanos,
    /// Run the traceroute survey too.
    pub run_traceroute: bool,
    /// Cap traces per vantage (None = the full Table-2 allocation). Used
    /// by tests and scaled-down studies.
    pub traces_per_vantage: Option<usize>,
    /// Endpoint ECN validation pass (off by default).
    #[serde(default)]
    pub validation: ValidationConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2015,
            batch1_start: Nanos::from_secs(0),
            batch2_start: Nanos::from_secs(75 * 86_400),
            batch_window: Nanos::from_secs(40 * 86_400),
            probe: ProbeConfig::default(),
            traceroute: TracerouteConfig::default(),
            discovery_rounds: 700,
            discovery_gap: Nanos::from_secs(1),
            run_traceroute: true,
            traces_per_vantage: None,
            validation: ValidationConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// A configuration sized for fast tests: short waits, few discovery
    /// rounds, compressed schedule.
    pub fn quick(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            batch1_start: Nanos::from_secs(0),
            batch2_start: Nanos::from_secs(6 * 3600),
            batch_window: Nanos::from_secs(4 * 3600),
            probe: ProbeConfig {
                tcp_handshake_wait: Nanos::from_secs(8),
                http_wait: Nanos::from_secs(8),
                ..ProbeConfig::default()
            },
            traceroute: TracerouteConfig::default(),
            discovery_rounds: 60,
            discovery_gap: Nanos::from_millis(200),
            run_traceroute: true,
            traces_per_vantage: None,
            validation: ValidationConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let p = ProbeConfig::default();
        assert_eq!(p.udp_retries, 5);
        assert_eq!(p.udp_timeout, Nanos::from_secs(1));
        assert_eq!(p.ect_codepoint, Ecn::Ect0);
        let t = TracerouteConfig::default();
        assert_eq!(t.probes_per_ttl, 3);
        assert_eq!(t.base_port, 33434);
        let c = CampaignConfig::default();
        assert!(c.batch2_start > c.batch1_start + c.batch_window);
    }

    #[test]
    fn quick_config_is_compressed() {
        let c = CampaignConfig::quick(7);
        assert!(c.batch2_start < CampaignConfig::default().batch2_start);
        assert!(c.discovery_rounds < 100);
    }
}
