//! NTP pool discovery (§3): repeated DNS queries against `pool.ntp.org`
//! and its country/region subdomains, accumulating the round-robin answers
//! into the measurement target list.

use crate::config::CampaignConfig;
use ecn_geo::{region_countries, region_zone, Region};
use ecn_netsim::Sim;
use ecn_services::pool_query_names;
use ecn_stack::HostHandle;
use ecn_wire::Ecn;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The full set of zone names the discovery script cycles through:
/// `pool.ntp.org`, `0.`–`3.`, each continental zone, and every country
/// zone the pool serves.
pub fn discovery_names() -> Vec<String> {
    let mut subs: Vec<&str> = Vec::new();
    for region in Region::ALL {
        if let Some(zone) = region_zone(region) {
            subs.push(zone);
        }
        subs.extend(region_countries(region));
    }
    pool_query_names(&subs)
}

/// Result of the discovery phase.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Unique server addresses in first-seen order (the probing order).
    pub targets: Vec<Ipv4Addr>,
    /// DNS queries issued.
    pub queries: usize,
    /// Queries that went unanswered.
    pub timeouts: usize,
}

/// Run the discovery loop from one vantage.
pub fn discover(
    sim: &mut Sim,
    handle: &HostHandle,
    dns: Ipv4Addr,
    cfg: &CampaignConfig,
) -> Discovery {
    let names = discovery_names();
    let sock = handle.udp_bind(0);
    let mut seen: HashSet<Ipv4Addr> = HashSet::new();
    let mut targets: Vec<Ipv4Addr> = Vec::new();
    let mut queries = 0;
    let mut timeouts = 0;
    let mut qid: u16 = 1;
    // Reusable per-query buffers: the loop issues thousands of queries per
    // trace, so the query encode and answer scan must not allocate.
    let mut qbuf: Vec<u8> = Vec::with_capacity(64);
    let mut answer_scratch: Vec<Ipv4Addr> = Vec::new();
    for _round in 0..cfg.discovery_rounds {
        for name in &names {
            qbuf.clear();
            ecn_wire::dns::encode_a_query_into(qid, name, &mut qbuf);
            qid = qid.wrapping_add(1).max(1);
            handle.udp_send(sim, sock, (dns, 53), &qbuf, Ecn::NotEct);
            queries += 1;
            let deadline = sim.now() + cfg.discovery_gap;
            sim.run_until(deadline);
            let mut answered = false;
            while let Some(got) = handle.udp_recv(sock) {
                // Collect before committing so a malformed tail discards
                // the whole message, exactly like the owned decode did.
                answer_scratch.clear();
                let a = &mut answer_scratch;
                if ecn_wire::dns::for_each_a_record(&got.payload, |addr| a.push(addr)).is_ok() {
                    answered = true;
                    for &addr in answer_scratch.iter() {
                        if seen.insert(addr) {
                            targets.push(addr);
                        }
                    }
                }
            }
            if !answered {
                timeouts += 1;
            }
        }
    }
    handle.udp_close(sock);
    Discovery {
        targets,
        queries,
        timeouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_pool::{build_scenario, PoolPlan};

    #[test]
    fn names_cover_global_continental_and_country_zones() {
        let names = discovery_names();
        assert!(names.contains(&"pool.ntp.org".into()));
        assert!(names.contains(&"0.pool.ntp.org".into()));
        assert!(names.contains(&"europe.pool.ntp.org".into()));
        assert!(names.contains(&"uk.pool.ntp.org".into()));
        assert!(names.contains(&"jp.pool.ntp.org".into()));
        assert!(names.len() > 30);
        // no duplicates
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn discovery_enumerates_the_whole_pool() {
        let mut sc = build_scenario(&PoolPlan::scaled(50), 21);
        let handle = sc.vantages[2].handle.clone();
        let cfg = CampaignConfig::quick(21);
        let d = discover(&mut sc.sim, &handle, sc.dns_addr, &cfg);
        assert_eq!(d.targets.len(), 50, "all servers found");
        assert!(d.queries > 100);
        // The access link has bursty loss, so some queries time out — the
        // repeated rounds make discovery robust to that, as in the paper's
        // weeks-long scraping.
        assert!(
            d.timeouts < d.queries / 4,
            "timeouts {} of {}",
            d.timeouts,
            d.queries
        );
        // first-seen order is deterministic for a fixed seed
        let mut sc2 = build_scenario(&PoolPlan::scaled(50), 21);
        let handle2 = sc2.vantages[2].handle.clone();
        let d2 = discover(&mut sc2.sim, &handle2, sc2.dns_addr, &cfg);
        assert_eq!(d.targets, d2.targets);
    }
}
