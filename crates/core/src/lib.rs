//! # ecn-core — the measurement study
//!
//! The primary contribution of McQuistin & Perkins (IMC 2015), as a
//! library: the measurement application that asks *"is ECN usable with
//! UDP?"* and the analysis that turns its raw traces into every table and
//! figure of the paper.
//!
//! ## Pipeline
//!
//! 1. [`discovery`] — enumerate the NTP pool via repeated DNS queries
//!    against `pool.ntp.org` and its country/region zones (§3).
//! 2. [`probes`] — per server, four measurements: NTP over not-ECT UDP,
//!    NTP over ECT(0)-marked UDP (5 retries × 1 s), HTTP over TCP, and
//!    HTTP over TCP with an ECN-setup SYN; verdicts come from a parallel
//!    packet capture, as in the paper's tcpdump methodology.
//! 3. [`mod@traceroute`] — ECN-aware traceroute: TTL-limited ECT(0) probes
//!    whose ICMP time-exceeded answers quote the header each router saw,
//!    revealing where marks are bleached (§4.2).
//! 4. [`campaign`] — the full 210-trace schedule across 13 vantages and
//!    two collection batches, plus the traceroute survey; [`engine`]
//!    executes it as blueprint-backed work units over work-stealing
//!    shards, streaming records into [`reducers`].
//! 5. [`analysis`] — Table 1/2 and Figures 2–6, each with a
//!    paper-style text rendering; [`analysis::FullReport`] bundles them.
//!
//! The probers talk to a [`ecn_stack::HostHandle`], whose surface mirrors
//! raw sockets with TOS/ECN control (`socket2`/`pnet` style); swapping the
//! simulated substrate for live sockets would not change this crate's
//! structure.
//!
//! Campaigns are usually launched from a declarative
//! [`ecn_pool::ScenarioSpec`] via [`scenario_run::run_scenario`] (the
//! `ecnudp` CLI's path); [`engine::run_campaign`] is the programmatic
//! equivalent with the paper's fixed experiment.

#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod config;
pub mod discovery;
pub mod engine;
pub mod events;
mod fault;
pub mod mp;
pub mod probes;
pub mod reducers;
pub mod report;
pub mod scenario_run;
pub mod trace;
pub mod traceroute;

pub use analysis::FullReport;
pub use campaign::{
    discover_in, run_discovery, run_trace, run_trace_observed, run_traceroute_survey, schedule,
    CampaignResult, DiscoveryStats, ScheduledTrace, VantageRoutes,
};
pub use config::{CampaignConfig, ProbeConfig, TracerouteConfig};
pub use discovery::{discover, discovery_names, Discovery};
pub use engine::{
    run_campaign, run_campaign_with_traces, run_engine, run_engine_observed, try_run_engine,
    try_run_engine_observed, EngineConfig, EngineRun, EngineTiming, UnitOrder,
};
pub use events::{Event, JsonLinesMetrics, ProbeKind, Progress, Subscriber, TraceSampler, UnitId};
pub use mp::{
    maybe_worker, peak_rss_kb, read_checkpoint, Checkpoint, MpError, MpFailure, WORKER_ARG,
    WORKER_EXE_ENV,
};
pub use probes::{probe_tcp, probe_udp, TcpProbeResult, UdpProbeResult};
pub use reducers::{
    merge_depth, merge_tree, BatchCounts, CampaignAggregates, DifferentialCounts, HopSurveyCounts,
    ReachabilityCounts, Reduce, RouteCtx, ShardReducers, SurveyCounts, Table2Counts, TraceCounters,
    TraceCtx, TraceStats,
};
pub use scenario_run::{
    campaign_config, engine_config, run_scenario, run_scenario_observed, run_scenario_parallel,
    run_scenario_sharded, RunSummary,
};
pub use trace::{ServerOutcome, TraceRecord};
pub use traceroute::{traceroute, HopObservation, TraceroutePath};
