//! Live progress meter: unit/observation rates and an ETA, printed to
//! stderr while the campaign runs.
//!
//! This is the one built-in subscriber whose *output timing* is
//! nondeterministic (it reads the wall clock and the work-stealing
//! interleaving), which is why it writes to stderr and never into a
//! metrics export: `ecnudp run … --progress > report.txt` still captures
//! a clean, deterministic artefact on stdout.

use super::{Event, Subscriber};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct State {
    started: Instant,
    units_total: AtomicUsize,
    units_done: AtomicUsize,
    observations: AtomicU64,
    /// Failed worker attempts (supervised multi-process mode only).
    worker_failures: AtomicU64,
    /// Units re-shipped to respawned workers.
    unit_retries: AtomicU64,
    /// Milliseconds-since-start of the last line printed (throttle).
    last_print_ms: AtomicU64,
}

/// Stderr progress meter. All forks share one atomic state behind an `Arc`,
/// so any shard finishing a unit can advance the shared counters and
/// (rate-limited) repaint the line.
#[derive(Debug, Clone)]
pub struct Progress {
    state: Arc<State>,
    /// Minimum milliseconds between prints.
    every_ms: u64,
}

impl Progress {
    /// A progress meter printing at most every 200 ms.
    pub fn new() -> Progress {
        Progress::with_interval_ms(200)
    }

    /// A progress meter printing at most every `every_ms` milliseconds.
    pub fn with_interval_ms(every_ms: u64) -> Progress {
        Progress {
            state: Arc::new(State {
                started: Instant::now(),
                units_total: AtomicUsize::new(0),
                units_done: AtomicUsize::new(0),
                observations: AtomicU64::new(0),
                worker_failures: AtomicU64::new(0),
                unit_retries: AtomicU64::new(0),
                last_print_ms: AtomicU64::new(0),
            }),
            every_ms,
        }
    }

    /// Units completed so far (shared across forks).
    pub fn units_done(&self) -> usize {
        self.state.units_done.load(Ordering::Relaxed)
    }

    /// Server observations completed so far (shared across forks).
    pub fn observations(&self) -> u64 {
        self.state.observations.load(Ordering::Relaxed)
    }

    fn render(&self, done: usize) -> String {
        let st = &self.state;
        let total = st.units_total.load(Ordering::Relaxed);
        let obs = st.observations.load(Ordering::Relaxed);
        let secs = st.started.elapsed().as_secs_f64().max(1e-9);
        let obs_rate = obs as f64 / secs;
        let unit_rate = done as f64 / secs;
        let eta = if done > 0 && total > done {
            (total - done) as f64 / unit_rate
        } else {
            0.0
        };
        let mut line = format!(
            "[ecnudp] {done}/{total} units | {obs} obs | {obs_rate:.0} obs/s (servers/s) | ETA {eta:.1}s"
        );
        let failures = st.worker_failures.load(Ordering::Relaxed);
        if failures > 0 {
            let retries = st.unit_retries.load(Ordering::Relaxed);
            line.push_str(&format!(
                " | {failures} worker failure(s), {retries} unit(s) retried"
            ));
        }
        line
    }

    fn maybe_print(&self, done: usize, force: bool) {
        let st = &self.state;
        let now_ms = st.started.elapsed().as_millis() as u64;
        let last = st.last_print_ms.load(Ordering::Relaxed);
        let due = now_ms.saturating_sub(last) >= self.every_ms;
        if (force || due)
            && st
                .last_print_ms
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            eprintln!("{}", self.render(done));
        }
    }
}

impl Default for Progress {
    fn default() -> Self {
        Progress::new()
    }
}

impl Subscriber for Progress {
    fn fork(&self) -> Self {
        self.clone() // shared Arc: live counters span all shards
    }

    fn on_event(&mut self, event: &Event<'_>) {
        match event {
            Event::CampaignStarted { units, .. } => {
                self.state.units_total.store(*units, Ordering::Relaxed);
            }
            Event::UnitFinished { observations, .. } => {
                self.state
                    .observations
                    .fetch_add(*observations as u64, Ordering::Relaxed);
                let done = self.state.units_done.fetch_add(1, Ordering::Relaxed) + 1;
                self.maybe_print(done, false);
            }
            // supervised multi-process mode: units finish worker-at-a-time
            Event::WorkerFinished {
                units,
                observations,
                ..
            } => {
                self.state
                    .observations
                    .fetch_add(*observations, Ordering::Relaxed);
                let done = self.state.units_done.fetch_add(*units, Ordering::Relaxed) + units;
                self.maybe_print(done, false);
            }
            Event::WorkerFailed { .. } => {
                self.state.worker_failures.fetch_add(1, Ordering::Relaxed);
            }
            Event::UnitRetried { .. } => {
                self.state.unit_retries.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn merge(&mut self, _other: Self) {
        // state is shared; nothing to fold
    }

    fn finish(&mut self) {
        let done = self.state.units_done.load(Ordering::Relaxed);
        self.maybe_print(done, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forks_share_counters() {
        let mut root = Progress::with_interval_ms(u64::MAX); // never prints early
        root.on_event(&Event::CampaignStarted {
            vantages: 2,
            units: 4,
            targets: 10,
        });
        let mut fork = root.fork();
        fork.on_event(&Event::UnitFinished {
            unit: super::super::UnitId {
                vantage: 0,
                chunk: 0,
            },
            traces: 1,
            observations: 10,
        });
        assert_eq!(root.units_done(), 1);
        assert_eq!(root.observations(), 10);
        root.merge(fork);
        assert_eq!(root.units_done(), 1, "merge must not double-count");
    }

    #[test]
    fn render_reports_progress_shape() {
        let p = Progress::new();
        p.state.units_total.store(10, Ordering::Relaxed);
        p.state.observations.store(400, Ordering::Relaxed);
        let line = p.render(5);
        assert!(line.contains("5/10 units"), "{line}");
        assert!(line.contains("400 obs"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }
}
