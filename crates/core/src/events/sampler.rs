//! End-to-end trace sampling: keep 1-in-N *logical* traces, selected by
//! a hash of the trace's chunk-invariant identity — the scalable
//! replacement for `EngineConfig::keep_traces` at populations where
//! retaining every record is unaffordable.
//!
//! The selection predicate [`TraceSampler::selects`] is a pure function
//! of `(vantage_key, trace_index)` — never the chunk, shard, or
//! schedule — so the sampled set is exactly the subset of what
//! `keeping_traces()` would retain whose identity hash lands on the
//! sample, byte-for-byte and invariant under shard count
//! (`tests/event_stream.rs` proves this property).

use super::{Event, Subscriber};
use crate::trace::TraceRecord;
use ecn_netsim::{derive_seed, LabelBuf};
use std::collections::BTreeMap;

/// Salt for the identity hash: fixed and documented so a given logical
/// trace is sampled (or not) consistently across campaigns and tools.
const SAMPLER_SALT: u64 = 0xec5a_4d91_2015_0e41;

/// The 1-in-N trace sampler. Forks collect the selected (possibly
/// partial, when `target_chunks > 1`) records; [`Subscriber::finish`]
/// stitches chunk partials together and orders the result exactly as the
/// engine's `keep_traces` merge would.
#[derive(Debug, Default)]
pub struct TraceSampler {
    every: usize,
    /// (vantage, trace_index) → chunk → that chunk's partial record.
    partials: BTreeMap<(usize, usize), BTreeMap<usize, TraceRecord>>,
    records: Vec<TraceRecord>,
}

impl TraceSampler {
    /// A sampler keeping one in `every` logical traces (`every <= 1`
    /// keeps all of them).
    pub fn new(every: usize) -> TraceSampler {
        TraceSampler {
            every,
            ..TraceSampler::default()
        }
    }

    /// The identity-hash selection predicate: does a sampler at rate
    /// `1/every` keep the trace `(vantage_key, trace_index)`? Pure in its
    /// arguments — chunk-, shard-, and seed-independent.
    pub fn selects(every: usize, vantage_key: &str, trace_index: usize) -> bool {
        if every <= 1 {
            return true;
        }
        let label = LabelBuf::format(format_args!("sample/{vantage_key}/t{trace_index}"));
        derive_seed(SAMPLER_SALT, label.as_str()).is_multiple_of(every as u64)
    }

    /// The sampled records, available after [`Subscriber::finish`]:
    /// chunk partials merged, ordered by `(started_at, vantage_key)` —
    /// the exact order (and bytes) of the matching subset of a
    /// `keeping_traces()` run's `CampaignResult::traces`.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consume the sampler, yielding the sampled records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl Subscriber for TraceSampler {
    fn fork(&self) -> Self {
        TraceSampler::new(self.every)
    }

    fn on_event(&mut self, event: &Event<'_>) {
        if let Event::TraceVerdict {
            unit,
            trace_index,
            record,
        } = event
        {
            if TraceSampler::selects(self.every, &record.vantage_key, *trace_index) {
                self.partials
                    .entry((unit.vantage, *trace_index))
                    .or_default()
                    .insert(unit.chunk, (*record).clone());
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, chunks) in other.partials {
            self.partials.entry(key).or_default().extend(chunks);
        }
        self.records.extend(other.records);
    }

    fn finish(&mut self) {
        // Mirror the engine's keep_traces merge: the lowest chunk's record
        // carries the header fields (vantage, batch, started_at), later
        // chunks append their outcomes in chunk order, and the final set
        // sorts by (started_at, vantage_key) — trace_index breaks ties the
        // way the engine's stable sort does.
        let mut merged: Vec<(usize, TraceRecord)> = Vec::with_capacity(self.partials.len());
        for ((_vantage, trace_index), chunks) in std::mem::take(&mut self.partials) {
            let mut iter = chunks.into_values();
            let Some(mut base) = iter.next() else {
                continue;
            };
            for partial in iter {
                base.outcomes.extend(partial.outcomes);
            }
            merged.push((trace_index, base));
        }
        merged.sort_by(|(ai, a), (bi, b)| {
            (a.started_at, a.vantage_key.as_str(), *ai).cmp(&(
                b.started_at,
                b.vantage_key.as_str(),
                *bi,
            ))
        });
        self.records = merged.into_iter().map(|(_, rec)| rec).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_keeps_everything() {
        for i in 0..50 {
            assert!(TraceSampler::selects(1, "home1", i));
            assert!(TraceSampler::selects(0, "home1", i));
        }
    }

    #[test]
    fn selection_rate_is_roughly_one_in_n() {
        let keys = ["home1", "home2", "dc-ec2-east", "univ-wired"];
        for n in [2usize, 4, 8] {
            let kept: usize = keys
                .iter()
                .flat_map(|k| (0..250).map(move |i| TraceSampler::selects(n, k, i)))
                .filter(|&s| s)
                .count();
            let expect = 1000 / n;
            assert!(
                kept > expect / 2 && kept < expect * 2,
                "1/{n}: kept {kept} of 1000 (expected ≈{expect})"
            );
        }
    }

    #[test]
    fn selection_is_identity_pure() {
        // same (key, index) always answers the same, regardless of order
        let a = TraceSampler::selects(4, "home1", 3);
        for _ in 0..10 {
            assert_eq!(TraceSampler::selects(4, "home1", 3), a);
        }
    }
}
