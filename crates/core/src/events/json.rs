//! JSON-lines metrics export: periodic counter snapshots plus terminal
//! per-unit records, written to any `io::Write` sink.
//!
//! ## Schema (one JSON object per line)
//!
//! ```text
//! {"type":"campaign","scenario":S,"seed":N,"vantages":V,"units":U,"targets":T}
//! {"type":"unit","vantage":v,"chunk":c,"traces":t,"observations":o,
//!  "probes":{"udp_plain":..,"udp_ect":..,"tcp_plain":..,"tcp_ecn":..},
//!  "delivered":..,"dropped":{<cause>:n,..},"ce_marked":..,
//!  "ecn_rewritten":{<hop label>:n,..}}                 // one per unit
//! {"type":"snapshot","units_done":k,"traces":..,"observations":..,
//!  "probes_sent":..,"delivered":..,"dropped_total":..,"ce_marked":..,
//!  "ecn_rewritten_total":..}                           // every K units
//! {"type":"summary","units":..,"traces":..,"observations":..,
//!  "probes_sent":..,"delivered":..,"dropped_total":..,"ce_marked":..,
//!  "ecn_rewritten_total":..,"wall_ms":..}              // last line
//! ```
//!
//! Unit records appear in canonical `(vantage, chunk)` order and
//! snapshots are synthesized between them every `snapshot_every` units,
//! so the stream is **byte-identical for any shard count** — the one
//! exception is the summary's `wall_ms` field, the stream's only
//! wall-clock value (tests normalize it; everything else is a pure
//! function of the scenario).
//!
//! ## Supervision lines (multi-process mode only)
//!
//! Under the supervised driver the parent-side subscriber sees worker
//! lifecycle events instead of per-probe events; those surface as extra
//! typed lines between the header and the unit records, **emitted only
//! when present** so single-process streams are byte-identical to
//! earlier schema versions:
//!
//! ```text
//! {"type":"workers_clamped","requested":8,"spawned":1}
//! {"type":"worker_failed","worker":1,"attempt":0,"units":3,
//!  "will_retry":true,"cause":"..."}                    // per failed attempt
//! {"type":"worker","worker":0,"units":7,"observations":N}  // per worker slot
//! {"type":"retries","unit_retries":3}                  // when any unit retried
//! {"type":"checkpoint","writes":4,"completed":13,"total":13}
//! ```
//!
//! Failure lines are sorted by `(worker, attempt)` and worker lines by
//! worker index, so the stream stays deterministic for a fixed fault
//! schedule.

use super::{json_escape, Event, ProbeKind, Subscriber, UnitId};
use ecn_netsim::SimCounters;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::time::Instant;

/// Accumulated state of one work unit.
#[derive(Debug, Default, Clone)]
struct UnitRec {
    probes: [u64; 4],
    traces: usize,
    observations: usize,
    sim: SimCounters,
}

/// The JSON-lines metrics subscriber. Forks accumulate per-unit records
/// keyed by [`UnitId`]; the root writes the whole ordered stream in
/// [`Subscriber::finish`], which is what makes the output deterministic
/// under work stealing (see the module docs).
#[derive(Debug)]
pub struct JsonLinesMetrics<W: Write + Send> {
    /// Only the root holds the sink; forks carry `None`.
    writer: Option<W>,
    scenario: String,
    seed: u64,
    snapshot_every: usize,
    started: Instant,
    shape: Option<(usize, usize, usize)>, // vantages, units, targets
    units: BTreeMap<UnitId, UnitRec>,
    // supervision records (multi-process mode; all empty in-process)
    clamped: Option<(usize, usize)>,        // requested, spawned
    workers: BTreeMap<usize, (usize, u64)>, // worker -> (units, observations)
    failures: Vec<FailureRec>,
    unit_retries: u64,
    checkpoints: Option<(u64, usize, usize)>, // writes, completed, total
    err: Option<io::Error>,
}

/// One failed worker attempt, as observed on the root subscriber.
#[derive(Debug, Clone)]
struct FailureRec {
    worker: usize,
    attempt: u32,
    units: usize,
    cause: String,
    will_retry: bool,
}

impl<W: Write + Send> JsonLinesMetrics<W> {
    /// A metrics exporter writing to `writer`, with a default header
    /// identity and a snapshot every 10 units.
    pub fn new(writer: W) -> JsonLinesMetrics<W> {
        JsonLinesMetrics {
            writer: Some(writer),
            scenario: "campaign".into(),
            seed: 0,
            snapshot_every: 10,
            started: Instant::now(),
            shape: None,
            units: BTreeMap::new(),
            clamped: None,
            workers: BTreeMap::new(),
            failures: Vec::new(),
            unit_retries: 0,
            checkpoints: None,
            err: None,
        }
    }

    /// Set the header identity (`scenario`/`seed` fields of the
    /// `campaign` line).
    pub fn with_header(mut self, scenario: &str, seed: u64) -> JsonLinesMetrics<W> {
        self.scenario = scenario.to_string();
        self.seed = seed;
        self
    }

    /// Snapshot cadence in units (0 disables snapshots).
    pub fn snapshot_every(mut self, units: usize) -> JsonLinesMetrics<W> {
        self.snapshot_every = units;
        self
    }

    /// The first write error hit while flushing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.err.as_ref()
    }

    /// Reclaim the sink after [`Subscriber::finish`] (e.g. to append
    /// sampled trace records to the same file). Fails with the recorded
    /// write error if flushing failed.
    pub fn into_writer(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.writer
            .take()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fork holds no writer"))
    }

    fn write_line(&mut self, line: &str) {
        if self.err.is_some() {
            return;
        }
        if let Some(w) = &mut self.writer {
            if let Err(e) = w
                .write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
            {
                self.err = Some(e);
            }
        }
    }
}

/// Render a `{"label":count,...}` object from an ordered map.
fn counter_object<K: AsRef<str>>(map: &BTreeMap<K, u64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k.as_ref()), v);
    }
    out.push('}');
    out
}

/// Cumulative totals used by snapshot and summary lines.
#[derive(Default)]
struct Totals {
    traces: usize,
    observations: usize,
    probes_sent: u64,
    delivered: u64,
    dropped: u64,
    ce_marked: u64,
    ecn_rewritten: u64,
}

impl Totals {
    fn add(&mut self, rec: &UnitRec) {
        self.traces += rec.traces;
        self.observations += rec.observations;
        self.probes_sent += rec.probes.iter().sum::<u64>();
        self.delivered += rec.sim.delivered;
        self.dropped += rec.sim.total_dropped();
        self.ce_marked += rec.sim.ce_marked;
        self.ecn_rewritten += rec.sim.total_ecn_rewritten();
    }

    fn fields(&self) -> String {
        format!(
            "\"traces\":{},\"observations\":{},\"probes_sent\":{},\"delivered\":{},\
             \"dropped_total\":{},\"ce_marked\":{},\"ecn_rewritten_total\":{}",
            self.traces,
            self.observations,
            self.probes_sent,
            self.delivered,
            self.dropped,
            self.ce_marked,
            self.ecn_rewritten,
        )
    }
}

impl<W: Write + Send> Subscriber for JsonLinesMetrics<W> {
    fn fork(&self) -> Self {
        JsonLinesMetrics {
            writer: None,
            scenario: String::new(),
            seed: 0,
            snapshot_every: 0,
            started: self.started,
            shape: None,
            units: BTreeMap::new(),
            clamped: None,
            workers: BTreeMap::new(),
            failures: Vec::new(),
            unit_retries: 0,
            checkpoints: None,
            err: None,
        }
    }

    fn on_event(&mut self, event: &Event<'_>) {
        match event {
            Event::CampaignStarted {
                vantages,
                units,
                targets,
            } => self.shape = Some((*vantages, *units, *targets)),
            Event::ProbeSent { unit, kind, .. } => {
                self.units.entry(*unit).or_default().probes[kind.index()] += 1;
            }
            Event::TraceVerdict { unit, record, .. } => {
                let rec = self.units.entry(*unit).or_default();
                rec.traces += 1;
                rec.observations += record.outcomes.len();
            }
            Event::SimFlushed { unit, counters } => {
                self.units.entry(*unit).or_default().sim.merge(counters);
            }
            Event::WorkersClamped { requested, spawned } => {
                self.clamped = Some((*requested, *spawned));
            }
            Event::WorkerFailed {
                worker,
                attempt,
                units,
                cause,
                will_retry,
            } => self.failures.push(FailureRec {
                worker: *worker,
                attempt: *attempt,
                units: *units,
                cause: cause.to_string(),
                will_retry: *will_retry,
            }),
            Event::UnitRetried { .. } => self.unit_retries += 1,
            Event::WorkerFinished {
                worker,
                units,
                observations,
            } => {
                let rec = self.workers.entry(*worker).or_default();
                rec.0 += units;
                rec.1 += observations;
            }
            Event::CheckpointWritten {
                completed_units,
                total_units,
            } => {
                let (writes, completed, total) = self.checkpoints.get_or_insert((0, 0, 0));
                *writes += 1;
                *completed = *completed_units;
                *total = *total_units;
            }
            Event::UnitFinished { .. } | Event::ShardProgress { .. } => {}
        }
    }

    fn merge(&mut self, other: Self) {
        // forks observe disjoint units, but stay defensive: fold
        for (k, v) in other.units {
            let rec = self.units.entry(k).or_default();
            for (i, p) in v.probes.iter().enumerate() {
                rec.probes[i] += p;
            }
            rec.traces += v.traces;
            rec.observations += v.observations;
            rec.sim.merge(&v.sim);
        }
        self.shape = self.shape.or(other.shape);
        self.clamped = self.clamped.or(other.clamped);
        for (worker, (units, obs)) in other.workers {
            let rec = self.workers.entry(worker).or_default();
            rec.0 += units;
            rec.1 += obs;
        }
        self.failures.extend(other.failures);
        self.unit_retries += other.unit_retries;
        if let Some((w, c, t)) = other.checkpoints {
            let (writes, completed, total) = self.checkpoints.get_or_insert((0, 0, 0));
            *writes += w;
            *completed = c;
            *total = t;
        }
        if self.err.is_none() {
            self.err = other.err;
        }
    }

    fn finish(&mut self) {
        let (vantages, unit_count, targets) = self.shape.unwrap_or((0, 0, 0));
        let header = format!(
            "{{\"type\":\"campaign\",\"scenario\":\"{}\",\"seed\":{},\"vantages\":{},\
             \"units\":{},\"targets\":{}}}",
            json_escape(&self.scenario),
            self.seed,
            vantages,
            unit_count,
            targets,
        );
        self.write_line(&header);

        // supervision lines: only present in multi-process mode, so the
        // single-process stream stays byte-identical to older schemas
        if let Some((requested, spawned)) = self.clamped.take() {
            self.write_line(&format!(
                "{{\"type\":\"workers_clamped\",\"requested\":{requested},\"spawned\":{spawned}}}"
            ));
        }
        let mut failures = std::mem::take(&mut self.failures);
        failures.sort_by_key(|f| (f.worker, f.attempt));
        for f in failures {
            self.write_line(&format!(
                "{{\"type\":\"worker_failed\",\"worker\":{},\"attempt\":{},\"units\":{},\
                 \"will_retry\":{},\"cause\":\"{}\"}}",
                f.worker,
                f.attempt,
                f.units,
                f.will_retry,
                json_escape(&f.cause),
            ));
        }
        for (worker, (w_units, w_obs)) in std::mem::take(&mut self.workers) {
            self.write_line(&format!(
                "{{\"type\":\"worker\",\"worker\":{worker},\"units\":{w_units},\
                 \"observations\":{w_obs}}}"
            ));
        }
        if self.unit_retries > 0 {
            self.write_line(&format!(
                "{{\"type\":\"retries\",\"unit_retries\":{}}}",
                self.unit_retries
            ));
        }
        if let Some((writes, completed, total)) = self.checkpoints.take() {
            self.write_line(&format!(
                "{{\"type\":\"checkpoint\",\"writes\":{writes},\"completed\":{completed},\
                 \"total\":{total}}}"
            ));
        }

        let units = std::mem::take(&mut self.units);
        let mut totals = Totals::default();
        for (done, (id, rec)) in units.iter().enumerate() {
            let probes: BTreeMap<&str, u64> = ProbeKind::ALL
                .iter()
                .map(|k| (k.label(), rec.probes[k.index()]))
                .collect();
            let line = format!(
                "{{\"type\":\"unit\",\"vantage\":{},\"chunk\":{},\"traces\":{},\
                 \"observations\":{},\"probes\":{},\"delivered\":{},\"dropped\":{},\
                 \"ce_marked\":{},\"ecn_rewritten\":{}}}",
                id.vantage,
                id.chunk,
                rec.traces,
                rec.observations,
                counter_object(&probes),
                rec.sim.delivered,
                counter_object(&rec.sim.dropped),
                rec.sim.ce_marked,
                counter_object(&rec.sim.ecn_rewritten),
            );
            self.write_line(&line);
            totals.add(rec);
            let done = done + 1;
            if self.snapshot_every > 0 && done % self.snapshot_every == 0 && done < units.len() {
                let snap = format!(
                    "{{\"type\":\"snapshot\",\"units_done\":{},{}}}",
                    done,
                    totals.fields(),
                );
                self.write_line(&snap);
            }
        }
        let summary = format!(
            "{{\"type\":\"summary\",\"units\":{},{},\"wall_ms\":{:.3}}}",
            units.len(),
            totals.fields(),
            self.started.elapsed().as_secs_f64() * 1e3,
        );
        self.write_line(&summary);
        if self.err.is_none() {
            if let Some(w) = &mut self.writer {
                if let Err(e) = w.flush() {
                    self.err = Some(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_object_renders_sorted_pairs() {
        let mut m: BTreeMap<&str, u64> = BTreeMap::new();
        assert_eq!(counter_object(&m), "{}");
        m.insert("loss", 2);
        m.insert("firewall", 1);
        assert_eq!(counter_object(&m), "{\"firewall\":1,\"loss\":2}");
    }

    #[test]
    fn finish_writes_header_units_and_summary() {
        let mut sub = JsonLinesMetrics::new(Vec::new())
            .with_header("t", 7)
            .snapshot_every(1);
        sub.on_event(&Event::CampaignStarted {
            vantages: 1,
            units: 2,
            targets: 3,
        });
        for chunk in [1, 0] {
            // out-of-order arrival must not matter
            let unit = UnitId { vantage: 0, chunk };
            sub.on_event(&Event::ProbeSent {
                unit,
                server: std::net::Ipv4Addr::new(192, 0, 2, 1),
                kind: ProbeKind::UdpEct,
            });
        }
        sub.finish();
        let out = String::from_utf8(sub.into_writer().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "{out}");
        assert!(lines[0].starts_with("{\"type\":\"campaign\",\"scenario\":\"t\",\"seed\":7"));
        assert!(lines[1].contains("\"chunk\":0"), "canonical order");
        assert!(lines[2].starts_with("{\"type\":\"snapshot\",\"units_done\":1"));
        assert!(lines[3].contains("\"chunk\":1"));
        assert!(lines[4].starts_with("{\"type\":\"summary\",\"units\":2"));
        assert!(lines[4].contains("\"probes_sent\":2"));
    }
}
