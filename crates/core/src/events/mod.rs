//! Typed event stream over the campaign engine — the s2n-quic-events
//! pattern (ROADMAP item 4): a zero-cost-when-disabled [`Subscriber`]
//! trait the engine is monomorphized over, plus three built-in
//! subscribers.
//!
//! ## Emission points
//!
//! | Event | Emitted from |
//! |---|---|
//! | [`Event::CampaignStarted`] | `engine::run_engine_observed`, once the unit pool is known |
//! | [`Event::ProbeSent`] | `campaign::run_trace_observed`, before each of the four probes |
//! | [`Event::TraceVerdict`] | the engine's unit loop, after the trace record is reduced |
//! | [`Event::SimFlushed`] | the engine's unit loop, draining the netsim tap ([`ecn_netsim::SimCounters`]: datagrams delivered/dropped, CE marks, ECN rewrites at named hops) |
//! | [`Event::UnitFinished`] | the engine's unit loop, after the unit's traceroute slice |
//! | [`Event::ShardProgress`] | each engine shard, after every unit it executes |
//! | [`Event::WorkersClamped`] | the supervised driver (`mp`), when `processes` exceeds the unit count |
//! | [`Event::WorkerFailed`] | the supervised driver, when a worker attempt crashes/hangs/corrupts |
//! | [`Event::UnitRetried`] | the supervised driver, once per unit re-shipped to a respawned worker |
//! | [`Event::WorkerFinished`] | the supervised driver, when a worker slot delivers its payload |
//! | [`Event::CheckpointWritten`] | the supervised driver, after each atomic checkpoint write |
//!
//! The supervision events exist only on the parent's root subscriber in
//! multi-process mode (workers observe their own units internally); the
//! in-process engine never emits them, so single-process metrics streams
//! are unchanged.
//!
//! ## Zero-cost contract
//!
//! `()` implements [`Subscriber`] with [`Subscriber::ENABLED`]` = false`:
//! every emission site is guarded by `if S::ENABLED`, so the disabled
//! path is const-folded away by monomorphization — `run_engine` *is*
//! `run_engine_observed` with `()`, and the `probe_hot_loop` /
//! `alloc_regression` gates measure exactly that path. The netsim tap is
//! only installed when `S::ENABLED`.
//!
//! ## Determinism guarantee
//!
//! Shards deliver events in work-stealing order, so subscribers follow
//! the reducer discipline ([`crate::reducers`]): accumulate per-unit
//! state keyed by the chunk-invariant unit identity, [`Subscriber::merge`]
//! commutatively, and emit ordered output only in
//! [`Subscriber::finish`]. Every event except [`Event::ShardProgress`]
//! is a deterministic function of (plan, config, seed) — `ShardProgress`
//! depends on the stealing schedule and must never reach a deterministic
//! export (the built-in subscribers only feed it to the stderr progress
//! meter).

mod json;
mod progress;
mod sampler;

pub use json::JsonLinesMetrics;
pub use progress::Progress;
pub use sampler::TraceSampler;

use crate::trace::TraceRecord;
use ecn_netsim::SimCounters;
use std::net::Ipv4Addr;

/// Chunk-invariant identity of one work unit (one vantage's schedule
/// against one target chunk) — the key subscribers accumulate under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnitId {
    /// Vantage index (Table 2 order).
    pub vantage: usize,
    /// Target-chunk index within the vantage.
    pub chunk: usize,
}

/// Which of the four §3 measurements a probe belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// NTP over not-ECT UDP.
    UdpPlain,
    /// NTP over ECT(0)-marked UDP.
    UdpEct,
    /// HTTP over TCP without ECN.
    TcpPlain,
    /// HTTP over TCP with an ECN-setup SYN.
    TcpEcn,
}

impl ProbeKind {
    /// Stable schema label (the JSON-lines `probes` object keys).
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::UdpPlain => "udp_plain",
            ProbeKind::UdpEct => "udp_ect",
            ProbeKind::TcpPlain => "tcp_plain",
            ProbeKind::TcpEcn => "tcp_ecn",
        }
    }

    /// Dense index (0..4) for array-backed accumulators.
    pub fn index(self) -> usize {
        match self {
            ProbeKind::UdpPlain => 0,
            ProbeKind::UdpEct => 1,
            ProbeKind::TcpPlain => 2,
            ProbeKind::TcpEcn => 3,
        }
    }

    /// All four kinds, in schema order.
    pub const ALL: [ProbeKind; 4] = [
        ProbeKind::UdpPlain,
        ProbeKind::UdpEct,
        ProbeKind::TcpPlain,
        ProbeKind::TcpEcn,
    ];
}

/// One typed engine event. Borrowed payloads keep emission allocation-free;
/// subscribers clone only what they retain.
#[derive(Debug)]
pub enum Event<'a> {
    /// The campaign's shape is known; emitted once, on the root
    /// subscriber, before any shard starts.
    CampaignStarted {
        /// Vantage count.
        vantages: usize,
        /// Work units in the pool (vantages × target chunks).
        units: usize,
        /// Discovered probe targets.
        targets: usize,
    },
    /// A probe is about to be sent (four per server per trace).
    ProbeSent {
        /// Emitting unit.
        unit: UnitId,
        /// Target server.
        server: Ipv4Addr,
        /// Which of the four measurements.
        kind: ProbeKind,
    },
    /// A trace finished and its record was reduced. `record` holds this
    /// unit's chunk of the logical trace (all targets when
    /// `target_chunks = 1`).
    TraceVerdict {
        /// Emitting unit.
        unit: UnitId,
        /// Index of the trace within the vantage's schedule.
        trace_index: usize,
        /// The finished (partial) record.
        record: &'a TraceRecord,
    },
    /// The unit's simulator tap was drained: datagram delivery/drop
    /// totals, CE marks, and ECN rewrites at named hops.
    SimFlushed {
        /// Emitting unit.
        unit: UnitId,
        /// Counters since the unit's world was instantiated.
        counters: &'a SimCounters,
    },
    /// A work unit ran to completion (emitted after its traceroute
    /// slice, following `SimFlushed`).
    UnitFinished {
        /// The finished unit.
        unit: UnitId,
        /// Traces the unit executed.
        traces: usize,
        /// Server observations the unit produced (traces × chunk targets).
        observations: usize,
    },
    /// A shard finished another unit. **Nondeterministic** — depends on
    /// the work-stealing schedule; excluded from deterministic exports.
    ShardProgress {
        /// Shard index.
        shard: usize,
        /// Units this shard has completed so far.
        units_done: usize,
    },
    /// The supervised driver clamped an over-provisioned worker count to
    /// the remaining unit-pool size (spawning idle workers would pay full
    /// blueprint builds for empty slices).
    WorkersClamped {
        /// Worker processes requested.
        requested: usize,
        /// Worker processes actually spawned.
        spawned: usize,
    },
    /// A worker attempt failed (crash, hang, malformed payload, pipe
    /// error). **Nondeterministic by nature** — follows injected or real
    /// subprocess failures, never a fault-free run.
    WorkerFailed {
        /// Worker slot index.
        worker: usize,
        /// The failed attempt (0 = first spawn).
        attempt: u32,
        /// Units in the worker's slice.
        units: usize,
        /// Human-readable failure cause (a rendered
        /// [`crate::mp::MpFailure`]).
        cause: &'a str,
        /// Whether the supervisor will respawn the worker.
        will_retry: bool,
    },
    /// A unit is being re-shipped to a respawned worker (one per unit in
    /// the failed worker's slice, following [`Event::WorkerFailed`]).
    UnitRetried {
        /// The unit being retried.
        unit: UnitId,
        /// The worker slot retrying it.
        worker: usize,
        /// The attempt about to run it (1 = first retry).
        attempt: u32,
    },
    /// A worker slot delivered its payload (possibly after retries).
    WorkerFinished {
        /// Worker slot index.
        worker: usize,
        /// Units the worker executed.
        units: usize,
        /// Server observations the worker produced.
        observations: u64,
    },
    /// The supervised driver persisted a checkpoint (atomic temp+rename;
    /// see [`crate::mp::Checkpoint`]).
    CheckpointWritten {
        /// Canonical units recorded complete.
        completed_units: usize,
        /// Total units in the campaign.
        total_units: usize,
    },
}

/// A typed observer of engine events.
///
/// The engine is generic over `S: Subscriber` and guards every emission
/// with `if S::ENABLED`, so a disabled subscriber costs nothing. Engine
/// lifecycle: the *root* instance receives [`Event::CampaignStarted`],
/// each shard runs a [`Subscriber::fork`], forks are
/// [`Subscriber::merge`]d back into the root after the shards join, and
/// [`Subscriber::finish`] runs once on the root. For deterministic
/// output, accumulate keyed by [`UnitId`] and order only in `finish`
/// (see the module docs).
pub trait Subscriber: Send + Sized {
    /// Whether the engine should emit at all. `false` const-folds every
    /// emission site away.
    const ENABLED: bool = true;

    /// A per-shard instance. Forks observe disjoint unit subsets; shared
    /// live state (e.g. a progress meter) goes behind an `Arc`.
    fn fork(&self) -> Self;

    /// Observe one event.
    fn on_event(&mut self, event: &Event<'_>);

    /// Fold a fork back into the root (must be commutative across forks,
    /// like [`crate::reducers::Reduce::merge`]).
    fn merge(&mut self, other: Self);

    /// The campaign is over; flush ordered output. Runs once, on the
    /// root, after all forks are merged.
    fn finish(&mut self) {}
}

/// The no-op subscriber: compiles to nothing (`ENABLED = false`).
impl Subscriber for () {
    const ENABLED: bool = false;
    fn fork(&self) -> Self {}
    fn on_event(&mut self, _event: &Event<'_>) {}
    fn merge(&mut self, _other: Self) {}
}

/// Runtime-optional subscriber: `None` observes nothing (but, unlike
/// `()`, still pays the emission calls — the choice is per-run, not
/// per-monomorphization).
impl<S: Subscriber> Subscriber for Option<S> {
    const ENABLED: bool = S::ENABLED;
    fn fork(&self) -> Self {
        self.as_ref().map(S::fork)
    }
    fn on_event(&mut self, event: &Event<'_>) {
        if let Some(s) = self {
            s.on_event(event);
        }
    }
    fn merge(&mut self, other: Self) {
        if let (Some(a), Some(b)) = (self.as_mut(), other) {
            a.merge(b);
        }
    }
    fn finish(&mut self) {
        if let Some(s) = self {
            s.finish();
        }
    }
}

/// Composition: both subscribers observe every event. Nest pairs for
/// wider fan-out.
impl<A: Subscriber, B: Subscriber> Subscriber for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    fn fork(&self) -> Self {
        (self.0.fork(), self.1.fork())
    }
    fn on_event(&mut self, event: &Event<'_>) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

/// Minimal JSON string escaping for labels and names in hand-built
/// JSON-lines output (quotes, backslashes, control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_subscriber_is_disabled() {
        // `ENABLED` is a const by design — pinning its value per
        // composition shape is exactly the point of this test.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(!<() as Subscriber>::ENABLED);
            assert!(<Option<TraceSampler> as Subscriber>::ENABLED);
            assert!(<((), Option<TraceSampler>) as Subscriber>::ENABLED);
            assert!(!<((), ()) as Subscriber>::ENABLED);
        }
    }

    #[test]
    fn probe_kind_schema_is_stable() {
        let labels: Vec<_> = ProbeKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["udp_plain", "udp_ect", "tcp_plain", "tcp_ecn"]);
        for (i, k) in ProbeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
