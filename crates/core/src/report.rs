//! Plain-text rendering helpers shared by the analysis modules: aligned
//! tables and simple bar charts, so every bench target can print
//! paper-style artefacts to the terminal.

/// Render an aligned text table. Column count and widths are sized from
/// the widest row as well as the headers, so rows with more cells than
/// headers still align with the separator.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = rows
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .max(headers.len());
    let mut widths: Vec<usize> = vec![0; columns];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&sep);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Render a horizontal bar chart: one row per (label, value), scaled into
/// `width` characters between `min` and `max`.
pub fn render_bars(
    title: &str,
    items: &[(String, f64)],
    min: f64,
    max: f64,
    width: usize,
    unit: &str,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    for (label, value) in items {
        let clamped = value.clamp(min, max);
        let frac = if max > min {
            (clamped - min) / (max - min)
        } else {
            0.0
        };
        let filled = (frac * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$} |{}{}| {value:.2}{unit}\n",
            label,
            "#".repeat(filled),
            " ".repeat(width - filled),
        ));
    }
    out
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "Table X",
            &["Region", "Count"],
            &[
                vec!["Europe".into(), "1664".into()],
                vec!["North America".into(), "522".into()],
            ],
        );
        assert!(t.contains("Table X"));
        assert!(t.contains("Europe"));
        assert!(t.contains("1664"));
        // all data rows have the same width
        let lines: Vec<&str> = t.lines().filter(|l| l.contains('|')).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn wide_rows_size_the_columns_and_separator() {
        // a row with more cells than headers used to fall back to width 8
        // and misalign the separator; widths now come from the widest row
        let t = render_table(
            "Table Y",
            &["Region"],
            &[
                vec!["Europe".into(), "a long second cell".into()],
                vec!["NA".into(), "x".into(), "third".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        let body: Vec<&str> = lines.iter().filter(|l| l.contains('|')).copied().collect();
        let seps: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with('-'))
            .copied()
            .collect();
        let w = body.iter().map(|l| l.len()).max().unwrap();
        assert!(
            seps.iter().all(|s| s.len() == w),
            "separator spans all columns:\n{t}"
        );
        assert!(t.contains("a long second cell"));
        // every cell is padded to its column width
        assert!(body[0].contains(" a long second cell "));
    }

    #[test]
    fn bars_scale_between_bounds() {
        let b = render_bars(
            "Fig",
            &[("a".into(), 90.0), ("b".into(), 100.0)],
            90.0,
            100.0,
            10,
            "%",
        );
        let lines: Vec<&str> = b.lines().collect();
        assert!(lines[1].contains("|          |") || lines[1].contains("|#")); // a at min
        assert!(lines[2].contains("##########"), "b at max: {}", lines[2]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(98.966), "98.97%");
    }
}
