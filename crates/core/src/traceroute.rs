//! ECN-aware traceroute (§4.2): TTL-limited ECT(0)-marked UDP probes; each
//! ICMP time-exceeded quotes the probe's IP header *as the router saw it*,
//! so comparing the quoted ECN field with what was sent reveals where on
//! the path the mark was stripped — the technique of Bauer et al. and
//! tracebox.

use crate::config::TracerouteConfig;
use ecn_netsim::Sim;
use ecn_stack::HostHandle;
use ecn_wire::{Ecn, IcmpMessage, Ipv4Header, UdpHeader};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What one TTL step observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopObservation {
    /// Probe TTL.
    pub ttl: u8,
    /// Responding router address (None = all probes unanswered: `*`).
    pub router: Option<Ipv4Addr>,
    /// Quoted ECN codepoint per answered probe, in arrival order.
    pub quoted_ecn: Vec<Ecn>,
}

impl HopObservation {
    /// Did every answered probe still carry the sent mark?
    pub fn unmodified(&self, sent: Ecn) -> bool {
        self.quoted_ecn.iter().all(|e| *e == sent)
    }

    /// Did any answered probe show a modified mark?
    pub fn modified(&self, sent: Ecn) -> bool {
        self.quoted_ecn.iter().any(|e| *e != sent)
    }

    /// Did probes disagree (the "sometimes strips" signature)?
    pub fn mixed(&self, sent: Ecn) -> bool {
        self.modified(sent) && self.quoted_ecn.contains(&sent)
    }
}

/// One traceroute run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceroutePath {
    /// Destination probed.
    pub dst: Ipv4Addr,
    /// The codepoint probes were sent with.
    pub sent_ecn: Ecn,
    /// Hop observations in TTL order (trailing silence trimmed).
    pub hops: Vec<HopObservation>,
    /// An ICMP port-unreachable from the destination arrived (rare for
    /// pool servers; "traces stop generally one hop before the
    /// destination").
    pub reached_destination: bool,
}

impl TraceroutePath {
    /// Addresses of responding hops, in path order.
    pub fn responding_hops(&self) -> Vec<Ipv4Addr> {
        self.hops.iter().filter_map(|h| h.router).collect()
    }
}

/// Run one ECN traceroute.
pub fn traceroute(
    sim: &mut Sim,
    handle: &HostHandle,
    dst: Ipv4Addr,
    cfg: &TracerouteConfig,
) -> TraceroutePath {
    let sock = handle.udp_bind(0);
    let mut hops: Vec<HopObservation> = Vec::new();
    let mut port_map: HashMap<u16, usize> = HashMap::new(); // dport -> hop idx
    let mut reached = false;
    let mut silent_streak = 0u32;

    'sweep: for ttl in 1..=cfg.max_ttl {
        let hop_idx = hops.len();
        hops.push(HopObservation {
            ttl,
            router: None,
            quoted_ecn: Vec::new(),
        });
        for probe in 0..cfg.probes_per_ttl {
            let dport = cfg
                .base_port
                .wrapping_add((u16::from(ttl) - 1) * cfg.probes_per_ttl as u16 + probe as u16);
            port_map.insert(dport, hop_idx);
            handle.udp_send_probe(sim, sock, (dst, dport), b"ecn-traceroute", cfg.ecn, ttl);
            let deadline = sim.now() + cfg.probe_timeout;
            sim.run_until(deadline);
            // Drain ICMP; late answers for earlier TTLs are filed correctly
            // via the port map.
            for icmp in handle.icmp_recv_all() {
                let (quoted, is_port_unreach) = match &icmp.msg {
                    IcmpMessage::TimeExceeded { quoted } => (quoted, false),
                    IcmpMessage::DestUnreachable { code, quoted } => {
                        (quoted, matches!(code, ecn_wire::DestUnreachCode::Port))
                    }
                    _ => continue,
                };
                let Ok(qh) = Ipv4Header::decode(quoted) else {
                    continue;
                };
                if qh.dst != dst {
                    continue; // not this traceroute
                }
                let Ok(quh) = UdpHeader::decode_unverified(&quoted[20..]) else {
                    continue;
                };
                if quh.src_port != sock {
                    continue;
                }
                let Some(&idx) = port_map.get(&quh.dst_port) else {
                    continue;
                };
                if is_port_unreach && icmp.from == dst {
                    reached = true;
                }
                let hop = &mut hops[idx];
                hop.router = Some(icmp.from);
                hop.quoted_ecn.push(qh.ecn);
            }
        }
        if reached {
            break 'sweep;
        }
        if hops[hop_idx].router.is_none() {
            silent_streak += 1;
            if silent_streak >= cfg.stop_after_silent {
                break 'sweep;
            }
        } else {
            silent_streak = 0;
        }
    }
    handle.udp_close(sock);
    // trim trailing silent hops
    while hops.last().map(|h| h.router.is_none()).unwrap_or(false) {
        hops.pop();
    }
    TraceroutePath {
        dst,
        sent_ecn: cfg.ecn,
        hops,
        reached_destination: reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_netsim::EcnPolicy;
    use ecn_pool::{build_scenario, PoolPlan};

    #[test]
    fn traceroute_walks_the_path_in_order() {
        let mut sc = build_scenario(&PoolPlan::scaled(30), 31);
        let handle = sc.vantages[0].handle.clone();
        let dst = sc.servers[0].addr;
        let path = traceroute(&mut sc.sim, &handle, dst, &TracerouteConfig::default());
        assert!(
            path.hops.len() >= 8,
            "path has realistic depth: {}",
            path.hops.len()
        );
        // first hop is the vantage CPE (81.0.0.1), all hops answered
        assert_eq!(path.hops[0].router, Some(Ipv4Addr::new(81, 0, 0, 1)));
        let mut quotes = 0usize;
        for h in &path.hops {
            assert!(h.router.is_some());
            assert!(
                (1..=3).contains(&h.quoted_ecn.len()),
                "1..=3 probes answered per TTL"
            );
            quotes += h.quoted_ecn.len();
        }
        // the access link is (mildly) lossy, so allow a few missing probes
        assert!(
            quotes * 10 >= path.hops.len() * 3 * 9,
            "≥90% of probes answered: {quotes}/{}",
            path.hops.len() * 3
        );
        // pool servers don't answer traceroute: destination not reached
        assert!(!path.reached_destination);
        // hop addresses are distinct (no loops)
        let addrs = path.responding_hops();
        let set: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(set.len(), addrs.len());
    }

    #[test]
    fn clean_path_quotes_are_all_ect0() {
        let mut sc = build_scenario(&PoolPlan::scaled(30), 32);
        let handle = sc.vantages[5].handle.clone();
        // find a server in an AS with no bleacher: probe a few until one
        // shows fully unmodified quotes
        let mut clean_found = false;
        let targets: Vec<Ipv4Addr> = sc.servers.iter().map(|s| s.addr).take(10).collect();
        for dst in targets {
            let path = traceroute(&mut sc.sim, &handle, dst, &TracerouteConfig::default());
            if path.hops.iter().all(|h| h.unmodified(Ecn::Ect0)) {
                clean_found = true;
                break;
            }
        }
        assert!(clean_found, "most paths pass ECT(0) unmodified");
    }

    #[test]
    fn bleacher_shows_as_red_run_downstream() {
        let mut sc = build_scenario(&PoolPlan::scaled(40), 33);
        // force a known bleacher: make the first server's dest-AS border
        // strip (we find the border by tracerouting first, then compare).
        let handle = sc.vantages[7].handle.clone();
        let dst = sc.servers[0].addr;
        let before = traceroute(&mut sc.sim, &handle, dst, &TracerouteConfig::default());
        // plant a bleach at the 4th-from-last responding hop
        let hops = before.responding_hops();
        assert!(hops.len() >= 5);
        let target_hop = hops[hops.len() - 4];
        let node = sc.sim.find_node(target_hop).expect("router node");
        sc.sim.set_ecn_policy(node, EcnPolicy::Bleach);

        let after = traceroute(&mut sc.sim, &handle, dst, &TracerouteConfig::default());
        let hops_after = after.responding_hops();
        let pos = hops_after.iter().position(|h| *h == target_hop).unwrap();
        // the bleacher itself still quotes the original mark …
        assert!(after.hops[pos].unmodified(Ecn::Ect0));
        // … every responding hop after it quotes not-ECT (the red run)
        for h in &after.hops[pos + 1..] {
            if h.router.is_some() {
                assert!(h.modified(Ecn::Ect0), "hop {:?} should be red", h.router);
                assert!(h.quoted_ecn.iter().all(|e| *e == Ecn::NotEct));
            }
        }
        assert!(after.hops[pos + 1..].iter().any(|h| h.router.is_some()));
    }

    #[test]
    fn hop_observation_classification() {
        let hop = |quotes: Vec<Ecn>| HopObservation {
            ttl: 1,
            router: Some(Ipv4Addr::new(1, 1, 1, 1)),
            quoted_ecn: quotes,
        };
        assert!(hop(vec![Ecn::Ect0, Ecn::Ect0]).unmodified(Ecn::Ect0));
        assert!(hop(vec![Ecn::NotEct]).modified(Ecn::Ect0));
        assert!(!hop(vec![Ecn::NotEct]).mixed(Ecn::Ect0));
        assert!(hop(vec![Ecn::Ect0, Ecn::NotEct]).mixed(Ecn::Ect0));
    }
}
