//! The measurement campaign: discovery, then 210 traces across the 13
//! vantages and two collection batches, then the traceroute survey —
//! paper §3 end to end.
//!
//! Two runners are provided: [`run_campaign`] executes everything in one
//! simulator, strictly sequentially (most faithful); [`run_campaign_parallel`]
//! rebuilds the same seeded world once per vantage and runs vantages on
//! separate threads — statistically equivalent (vantages share no state but
//! the ground truth, which is seed-determined) and ~13× faster, which is
//! what the benches use.

use crate::config::CampaignConfig;
use crate::discovery::{discover, Discovery};
use crate::probes::{probe_tcp, probe_udp};
use crate::trace::{ServerOutcome, TraceRecord};
use crate::traceroute::{traceroute, TraceroutePath};
use ecn_netsim::Nanos;
use ecn_pool::{build_scenario, PoolPlan, Scenario};
use ecn_wire::Ecn;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Traceroute survey results from one vantage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantageRoutes {
    /// Vantage key.
    pub vantage_key: String,
    /// One path per target.
    pub paths: Vec<TraceroutePath>,
}

/// Everything the campaign produced (plus the databases the analysis
/// needs).
pub struct CampaignResult {
    /// Targets in discovery order.
    pub targets: Vec<Ipv4Addr>,
    /// Discovery statistics.
    pub discovery: DiscoveryStats,
    /// All trace records, in execution order.
    pub traces: Vec<TraceRecord>,
    /// Traceroute survey (one entry per vantage), if enabled.
    pub routes: Vec<VantageRoutes>,
    /// Geolocation DB for Table 1 / Figure 1.
    pub geodb: ecn_geo::GeoDb,
    /// IP→AS DB for the §4.2 boundary analysis.
    pub asdb: ecn_asdb::AsDb,
    /// Vantage (key, name) in Table 2 order.
    pub vantage_order: Vec<(String, String)>,
    /// Ground truth (audit only).
    pub truth: ecn_pool::GroundTruth,
}

/// Summary of the discovery phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiscoveryStats {
    /// Unique servers discovered.
    pub servers: usize,
    /// Queries issued.
    pub queries: usize,
    /// Unanswered queries.
    pub timeouts: usize,
}

impl From<&Discovery> for DiscoveryStats {
    fn from(d: &Discovery) -> Self {
        DiscoveryStats {
            servers: d.targets.len(),
            queries: d.queries,
            timeouts: d.timeouts,
        }
    }
}

/// A scheduled trace, before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledTrace {
    start: Nanos,
    vantage: usize,
    batch: u8,
}

/// Build the global schedule: batch-1 traces for home/wireless vantages,
/// batch-2 traces for all, spread across each batch window.
fn schedule(sc: &Scenario, cfg: &CampaignConfig) -> Vec<ScheduledTrace> {
    let mut out = Vec::new();
    for (vi, v) in sc.vantages.iter().enumerate() {
        let mut budget = cfg.traces_per_vantage.unwrap_or(usize::MAX);
        for (batch, count, start) in [
            (1u8, v.spec.traces.batch1, cfg.batch1_start),
            (2u8, v.spec.traces.batch2, cfg.batch2_start),
        ] {
            let count = count.min(budget);
            budget -= count;
            if count == 0 {
                continue;
            }
            let spacing = Nanos(cfg.batch_window.0 / count as u64);
            // stagger vantages so traces interleave rather than pile up
            let phase = Nanos(spacing.0 / 13 * (vi as u64 % 13));
            for i in 0..count {
                out.push(ScheduledTrace {
                    start: start + Nanos(spacing.0 * i as u64) + phase,
                    vantage: vi,
                    batch,
                });
            }
        }
    }
    out.sort_by_key(|t| (t.start, t.vantage));
    out
}

/// Execute one trace (all four probes against every target) from one
/// vantage, starting no earlier than its scheduled time.
fn run_trace(
    sc: &mut Scenario,
    vantage: usize,
    batch: u8,
    targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
) -> TraceRecord {
    let handle = sc.vantages[vantage].handle.clone();
    let node = sc.vantages[vantage].node;
    let capture = sc.sim.attach_capture(node);
    let started_at = sc.sim.now();
    let mut outcomes = Vec::with_capacity(targets.len());
    for &server in targets {
        capture.lock().clear(); // per-server tcpdump session
        let udp_plain = probe_udp(
            &mut sc.sim,
            &handle,
            &capture,
            server,
            Ecn::NotEct,
            &cfg.probe,
        );
        let udp_ect = probe_udp(
            &mut sc.sim,
            &handle,
            &capture,
            server,
            cfg.probe.ect_codepoint,
            &cfg.probe,
        );
        let tcp_plain = probe_tcp(&mut sc.sim, &handle, &capture, server, false, &cfg.probe);
        let tcp_ecn = probe_tcp(&mut sc.sim, &handle, &capture, server, true, &cfg.probe);
        outcomes.push(ServerOutcome {
            server,
            udp_plain,
            udp_ect,
            tcp_plain,
            tcp_ecn,
        });
    }
    capture.lock().clear();
    TraceRecord {
        vantage_key: sc.vantages[vantage].spec.key.to_string(),
        vantage_name: sc.vantages[vantage].spec.name.to_string(),
        batch,
        started_at,
        outcomes,
    }
}

/// Run the traceroute survey from one vantage.
fn run_traceroute_survey(
    sc: &mut Scenario,
    vantage: usize,
    targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
) -> VantageRoutes {
    let handle = sc.vantages[vantage].handle.clone();
    let mut paths = Vec::with_capacity(targets.len());
    for &dst in targets {
        paths.push(traceroute(&mut sc.sim, &handle, dst, &cfg.traceroute));
    }
    VantageRoutes {
        vantage_key: sc.vantages[vantage].spec.key.to_string(),
        paths,
    }
}

fn plan_with_churn(plan: &PoolPlan, cfg: &CampaignConfig) -> PoolPlan {
    PoolPlan {
        churn_at: cfg.batch2_start,
        ..plan.clone()
    }
}

/// Run discovery only (used by both runners and by Table 1).
pub fn run_discovery(plan: &PoolPlan, cfg: &CampaignConfig) -> (Discovery, Scenario) {
    let plan = plan_with_churn(plan, cfg);
    let mut sc = build_scenario(&plan, cfg.seed);
    // Discovery runs from the University wired vantage (index 2).
    let handle = sc.vantages[2].handle.clone();
    let dns = sc.dns_addr;
    let d = discover(&mut sc.sim, &handle, dns, cfg);
    (d, sc)
}

/// Sequential campaign: one world, traces executed in schedule order.
pub fn run_campaign(plan: &PoolPlan, cfg: &CampaignConfig) -> CampaignResult {
    let (discovery, mut sc) = run_discovery(plan, cfg);
    let targets = discovery.targets.clone();
    let plan_order = schedule(&sc, cfg);
    let mut traces = Vec::with_capacity(plan_order.len());
    for st in &plan_order {
        if sc.sim.now() < st.start {
            let t = st.start;
            sc.sim.run_until(t);
        }
        traces.push(run_trace(&mut sc, st.vantage, st.batch, &targets, cfg));
    }
    let mut routes = Vec::new();
    if cfg.run_traceroute {
        for vi in 0..sc.vantages.len() {
            routes.push(run_traceroute_survey(&mut sc, vi, &targets, cfg));
        }
    }
    finish(sc, targets, discovery, traces, routes)
}

/// Parallel campaign: one seeded world per vantage, vantages on threads.
pub fn run_campaign_parallel(plan: &PoolPlan, cfg: &CampaignConfig) -> CampaignResult {
    let (discovery, proto) = run_discovery(plan, cfg);
    let targets = discovery.targets.clone();
    let plan = plan_with_churn(plan, cfg);
    let vantage_count = proto.vantages.len();

    let mut per_vantage: Vec<(Vec<TraceRecord>, Option<VantageRoutes>)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for vi in 0..vantage_count {
            let plan = plan.clone();
            let targets = targets.clone();
            let cfg = *cfg;
            handles.push(scope.spawn(move |_| {
                let mut sc = build_scenario(&plan, cfg.seed);
                let my_schedule: Vec<ScheduledTrace> = schedule(&sc, &cfg)
                    .into_iter()
                    .filter(|t| t.vantage == vi)
                    .collect();
                let mut traces = Vec::with_capacity(my_schedule.len());
                for st in &my_schedule {
                    if sc.sim.now() < st.start {
                        let t = st.start;
                        sc.sim.run_until(t);
                    }
                    traces.push(run_trace(&mut sc, vi, st.batch, &targets, &cfg));
                }
                let routes = cfg
                    .run_traceroute
                    .then(|| run_traceroute_survey(&mut sc, vi, &targets, &cfg));
                (traces, routes)
            }));
        }
        for h in handles {
            per_vantage.push(h.join().expect("vantage thread"));
        }
    })
    .expect("campaign threads");

    // merge in schedule order (stable: traces carry start times)
    let mut traces: Vec<TraceRecord> = per_vantage
        .iter()
        .flat_map(|(t, _)| t.iter().cloned())
        .collect();
    traces.sort_by_key(|t| (t.started_at, t.vantage_key.clone()));
    let routes: Vec<VantageRoutes> = per_vantage.into_iter().filter_map(|(_, r)| r).collect();
    finish(proto, targets, discovery, traces, routes)
}

fn finish(
    sc: Scenario,
    targets: Vec<Ipv4Addr>,
    discovery: Discovery,
    traces: Vec<TraceRecord>,
    routes: Vec<VantageRoutes>,
) -> CampaignResult {
    CampaignResult {
        targets,
        discovery: DiscoveryStats::from(&discovery),
        traces,
        routes,
        vantage_order: sc
            .vantages
            .iter()
            .map(|v| (v.spec.key.to_string(), v.spec.name.to_string()))
            .collect(),
        geodb: sc.geodb,
        asdb: sc.asdb,
        truth: sc.truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg(seed: u64) -> CampaignConfig {
        CampaignConfig {
            discovery_rounds: 30,
            ..CampaignConfig::quick(seed)
        }
    }

    /// A pool plan small enough for unit tests but with all behaviours.
    fn mini_plan() -> PoolPlan {
        PoolPlan::scaled(40)
    }

    #[test]
    fn schedule_covers_both_batches_in_order() {
        let cfg = mini_cfg(41);
        let sc = build_scenario(&mini_plan(), cfg.seed);
        let s = schedule(&sc, &cfg);
        assert_eq!(s.len(), 210);
        assert!(s.windows(2).all(|w| w[0].start <= w[1].start));
        let b1 = s.iter().filter(|t| t.batch == 1).count();
        assert_eq!(b1, 15 + 8 + 14, "batch 1 = homes + wireless");
        // batch 2 strictly after batch 1 window
        let last_b1 = s
            .iter()
            .filter(|t| t.batch == 1)
            .map(|t| t.start)
            .max()
            .unwrap();
        let first_b2 = s
            .iter()
            .filter(|t| t.batch == 2)
            .map(|t| t.start)
            .min()
            .unwrap();
        assert!(first_b2 > last_b1);
    }

    #[test]
    fn single_trace_produces_full_outcomes() {
        let cfg = mini_cfg(42);
        let (d, mut sc) = run_discovery(&mini_plan(), &cfg);
        assert_eq!(d.targets.len(), 40);
        let rec = run_trace(&mut sc, 4, 2, &d.targets, &cfg);
        assert_eq!(rec.outcomes.len(), 40);
        // sanity: most servers are up and reachable both ways
        assert!(
            rec.udp_plain_reachable() > 25,
            "{}",
            rec.udp_plain_reachable()
        );
        assert!(rec.fig2a_pct() > 80.0);
        // at least one ECT-blocked server shows differential reachability
        let diff = rec
            .outcomes
            .iter()
            .filter(|o| o.udp_diff_plain_only())
            .count();
        assert!(diff >= 1, "ect-blocked server visible");
        // TCP: some reachable, most of those negotiated
        assert!(rec.tcp_reachable() > 10);
        assert!(rec.tcp_ecn_negotiated() > 5);
        assert!(rec.tcp_ecn_negotiated() <= rec.tcp_reachable());
    }
}
