//! Campaign building blocks: the global trace schedule, single-trace
//! execution (all four probes against every target), the per-vantage
//! traceroute survey, and the discovery phase — paper §3's mechanics.
//!
//! Campaign *execution* lives in [`crate::engine`]: a sharded,
//! work-stealing engine over (vantage × target-chunk) units that replaced
//! the two divergent runners this module used to carry. Sequential
//! execution is the `shards = 1` special case of the same code path.

use crate::config::CampaignConfig;
use crate::discovery::{discover, Discovery};
use crate::events::{Event, ProbeKind, Subscriber, UnitId};
use crate::probes::{probe_tcp, probe_udp, probe_validation};
use crate::reducers::CampaignAggregates;
use crate::trace::{ServerOutcome, TraceRecord};
use crate::traceroute::{traceroute, TraceroutePath};
use ecn_netsim::Nanos;
use ecn_pool::{PoolPlan, Scenario, WorldBlueprint};
use ecn_wire::Ecn;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Traceroute survey results from one vantage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VantageRoutes {
    /// Vantage key.
    pub vantage_key: String,
    /// One path per target.
    pub paths: Vec<TraceroutePath>,
}

/// Everything the campaign produced (plus the databases the analysis
/// needs).
pub struct CampaignResult {
    /// Targets in discovery order.
    pub targets: Vec<Ipv4Addr>,
    /// Discovery statistics.
    pub discovery: DiscoveryStats,
    /// Raw trace records in execution order — the opt-in escape hatch
    /// for per-trace consumers (dataset export, pcap artefacts, the
    /// legacy `FullReport::from_traces` cross-check). Empty by default:
    /// the engine runs reducer-only (`EngineConfig::keep_traces =
    /// false`) and the report path renders from [`Self::aggregates`].
    pub traces: Vec<TraceRecord>,
    /// Raw traceroute survey paths (one entry per vantage) — like
    /// [`Self::traces`], an opt-in escape hatch
    /// (`EngineConfig::keep_routes`): Figure 4 renders from the streamed
    /// [`crate::reducers::HopSurveyCounts`], so the default campaign
    /// leaves this empty even when the survey ran.
    pub routes: Vec<VantageRoutes>,
    /// Streaming-reducer aggregates (always populated by the engine) —
    /// the single source of truth for `FullReport`.
    pub aggregates: CampaignAggregates,
    /// Geolocation DB for Table 1 / Figure 1 (shared with the blueprint).
    pub geodb: std::sync::Arc<ecn_geo::GeoDb>,
    /// IP→AS DB for the §4.2 boundary analysis (shared with the blueprint).
    pub asdb: std::sync::Arc<ecn_asdb::AsDb>,
    /// Vantage (key, name) in Table 2 order.
    pub vantage_order: Vec<(String, String)>,
    /// Ground truth (audit only), shared with the blueprint.
    pub truth: std::sync::Arc<ecn_pool::GroundTruth>,
}

/// Summary of the discovery phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiscoveryStats {
    /// Unique servers discovered.
    pub servers: usize,
    /// Queries issued.
    pub queries: usize,
    /// Unanswered queries.
    pub timeouts: usize,
}

impl From<&Discovery> for DiscoveryStats {
    fn from(d: &Discovery) -> Self {
        DiscoveryStats {
            servers: d.targets.len(),
            queries: d.queries,
            timeouts: d.timeouts,
        }
    }
}

/// A scheduled trace, before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledTrace {
    /// Earliest start (virtual time).
    pub start: Nanos,
    /// Vantage index.
    pub vantage: usize,
    /// Collection batch (1 or 2).
    pub batch: u8,
}

/// Build the global schedule: batch-1 traces for home/wireless vantages,
/// batch-2 traces for all, spread across each batch window.
pub fn schedule(sc: &Scenario, cfg: &CampaignConfig) -> Vec<ScheduledTrace> {
    let mut out = Vec::new();
    for (vi, v) in sc.vantages.iter().enumerate() {
        let mut budget = cfg.traces_per_vantage.unwrap_or(usize::MAX);
        for (batch, count, start) in [
            (1u8, v.spec.traces.batch1, cfg.batch1_start),
            (2u8, v.spec.traces.batch2, cfg.batch2_start),
        ] {
            let count = count.min(budget);
            budget -= count;
            if count == 0 {
                continue;
            }
            let spacing = Nanos(cfg.batch_window.0 / count as u64);
            // stagger vantages so traces interleave rather than pile up
            let phase = Nanos(spacing.0 / 13 * (vi as u64 % 13));
            for i in 0..count {
                out.push(ScheduledTrace {
                    start: start + Nanos(spacing.0 * i as u64) + phase,
                    vantage: vi,
                    batch,
                });
            }
        }
    }
    out.sort_by_key(|t| (t.start, t.vantage));
    out
}

/// Execute one trace (all four probes against every target) from one
/// vantage, starting no earlier than its scheduled time.
pub fn run_trace(
    sc: &mut Scenario,
    vantage: usize,
    batch: u8,
    targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
) -> TraceRecord {
    run_trace_observed(
        sc,
        vantage,
        batch,
        targets,
        cfg,
        &mut (),
        UnitId { vantage, chunk: 0 },
    )
}

/// [`run_trace`], emitting an [`Event::ProbeSent`] before each probe. The
/// emissions are guarded by `S::ENABLED`, so `run_trace` (the `()` case)
/// compiles to exactly the unobserved hot loop — the path the
/// `alloc_regression` and `probe_hot_loop` gates measure.
pub fn run_trace_observed<S: Subscriber>(
    sc: &mut Scenario,
    vantage: usize,
    batch: u8,
    targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
    sub: &mut S,
    unit: UnitId,
) -> TraceRecord {
    let handle = sc.vantages[vantage].handle.clone();
    let node = sc.vantages[vantage].node;
    let capture = sc.sim.attach_capture(node);
    let started_at = sc.sim.now();
    let mut outcomes = Vec::with_capacity(targets.len());
    for &server in targets {
        capture.lock().clear(); // per-server tcpdump session
        if S::ENABLED {
            for kind in ProbeKind::ALL {
                sub.on_event(&Event::ProbeSent { unit, server, kind });
            }
        }
        let udp_plain = probe_udp(
            &mut sc.sim,
            &handle,
            &capture,
            server,
            Ecn::NotEct,
            &cfg.probe,
        );
        let udp_ect = probe_udp(
            &mut sc.sim,
            &handle,
            &capture,
            server,
            cfg.probe.ect_codepoint,
            &cfg.probe,
        );
        let tcp_plain = probe_tcp(&mut sc.sim, &handle, &capture, server, false, &cfg.probe);
        let tcp_ecn = probe_tcp(&mut sc.sim, &handle, &capture, server, true, &cfg.probe);
        let validation = if cfg.validation.enabled() {
            Some(probe_validation(
                &mut sc.sim,
                &handle,
                server,
                validation_session_ecn(vantage, cfg.validation.ect1_per_1000),
                udp_plain.reachable,
                &cfg.validation,
            ))
        } else {
            None
        };
        outcomes.push(ServerOutcome {
            server,
            udp_plain,
            udp_ect,
            tcp_plain,
            tcp_ecn,
            validation,
        });
    }
    capture.lock().clear();
    TraceRecord {
        vantage_key: sc.vantages[vantage].spec.key.to_string(),
        vantage_name: sc.vantages[vantage].spec.name.to_string(),
        batch,
        started_at,
        outcomes,
    }
}

/// Which codepoint a vantage's validation rounds test. A fixed fraction
/// of vantages (per 1000, chosen by a pure hash of the vantage index so
/// the assignment is identical across shard counts, process counts and
/// stealing orders) sends L4S-style ECT(1) trains; the rest send ECT(0).
fn validation_session_ecn(vantage: usize, ect1_per_1000: u32) -> Ecn {
    let h = (vantage as u32).wrapping_mul(2_654_435_761) >> 16;
    if h % 1000 < ect1_per_1000 {
        Ecn::Ect1
    } else {
        Ecn::Ect0
    }
}

/// Run the traceroute survey from one vantage.
pub fn run_traceroute_survey(
    sc: &mut Scenario,
    vantage: usize,
    targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
) -> VantageRoutes {
    let handle = sc.vantages[vantage].handle.clone();
    let mut paths = Vec::with_capacity(targets.len());
    for &dst in targets {
        paths.push(traceroute(&mut sc.sim, &handle, dst, &cfg.traceroute));
    }
    VantageRoutes {
        vantage_key: sc.vantages[vantage].spec.key.to_string(),
        paths,
    }
}

/// The plan the campaign actually runs: pool churn pinned to the batch-2
/// boundary.
pub(crate) fn plan_with_churn(plan: &PoolPlan, cfg: &CampaignConfig) -> PoolPlan {
    PoolPlan {
        churn_at: cfg.batch2_start,
        ..plan.clone()
    }
}

/// Run the discovery phase in an already-instantiated world.
/// Discovery runs from the University wired vantage (index 2); worlds
/// with fewer vantages (`ScenarioSpec::vantage_count < 3`) fall back to
/// the last one available.
pub fn discover_in(sc: &mut Scenario, cfg: &CampaignConfig) -> Discovery {
    let vantage = 2.min(sc.vantages.len().saturating_sub(1));
    let handle = sc.vantages[vantage].handle.clone();
    let dns = sc.dns_addr;
    discover(&mut sc.sim, &handle, dns, cfg)
}

/// Run discovery only (used by the engine, tests, and Table 1): builds
/// the blueprint, instantiates the canonical world, and discovers in it.
pub fn run_discovery(plan: &PoolPlan, cfg: &CampaignConfig) -> (Discovery, Scenario) {
    let plan = plan_with_churn(plan, cfg);
    let bp = WorldBlueprint::build(&plan, cfg.seed);
    let mut sc = bp.instantiate();
    let d = discover_in(&mut sc, cfg);
    (d, sc)
}

/// Assemble a [`CampaignResult`] from a finished run.
pub(crate) fn finish(
    sc: Scenario,
    targets: Vec<Ipv4Addr>,
    discovery: DiscoveryStats,
    traces: Vec<TraceRecord>,
    routes: Vec<VantageRoutes>,
    aggregates: CampaignAggregates,
) -> CampaignResult {
    CampaignResult {
        targets,
        discovery,
        traces,
        routes,
        aggregates,
        vantage_order: sc
            .vantages
            .iter()
            .map(|v| (v.spec.key.to_string(), v.spec.name.to_string()))
            .collect(),
        geodb: sc.geodb,
        asdb: sc.asdb,
        truth: sc.truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_pool::build_scenario;

    fn mini_cfg(seed: u64) -> CampaignConfig {
        CampaignConfig {
            discovery_rounds: 30,
            ..CampaignConfig::quick(seed)
        }
    }

    /// A pool plan small enough for unit tests but with all behaviours.
    fn mini_plan() -> PoolPlan {
        PoolPlan::scaled(40)
    }

    #[test]
    fn schedule_covers_both_batches_in_order() {
        let cfg = mini_cfg(41);
        let sc = build_scenario(&mini_plan(), cfg.seed);
        let s = schedule(&sc, &cfg);
        assert_eq!(s.len(), 210);
        assert!(s.windows(2).all(|w| w[0].start <= w[1].start));
        let b1 = s.iter().filter(|t| t.batch == 1).count();
        assert_eq!(b1, 15 + 8 + 14, "batch 1 = homes + wireless");
        // batch 2 strictly after batch 1 window
        let last_b1 = s
            .iter()
            .filter(|t| t.batch == 1)
            .map(|t| t.start)
            .max()
            .unwrap();
        let first_b2 = s
            .iter()
            .filter(|t| t.batch == 2)
            .map(|t| t.start)
            .min()
            .unwrap();
        assert!(first_b2 > last_b1);
    }

    #[test]
    fn single_trace_produces_full_outcomes() {
        let cfg = mini_cfg(42);
        let (d, mut sc) = run_discovery(&mini_plan(), &cfg);
        assert_eq!(d.targets.len(), 40);
        let rec = run_trace(&mut sc, 4, 2, &d.targets, &cfg);
        assert_eq!(rec.outcomes.len(), 40);
        // sanity: most servers are up and reachable both ways
        assert!(
            rec.udp_plain_reachable() > 25,
            "{}",
            rec.udp_plain_reachable()
        );
        assert!(rec.fig2a_pct() > 80.0);
        // at least one ECT-blocked server shows differential reachability
        let diff = rec
            .outcomes
            .iter()
            .filter(|o| o.udp_diff_plain_only())
            .count();
        assert!(diff >= 1, "ect-blocked server visible");
        // TCP: some reachable, most of those negotiated
        assert!(rec.tcp_reachable() > 10);
        assert!(rec.tcp_ecn_negotiated() > 5);
        assert!(rec.tcp_ecn_negotiated() <= rec.tcp_reachable());
    }
}
