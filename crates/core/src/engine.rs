//! The sharded campaign engine.
//!
//! One blueprint, many worlds: the engine builds the seeded
//! [`WorldBlueprint`] **once**, then executes the campaign as a pool of
//! independent work units — one per (vantage × target-chunk) — scheduled
//! across a configurable number of work-stealing shards. Each unit
//! instantiates its own live world from the shared blueprint under an RNG
//! domain label derived from the *unit identity* (never the shard), so:
//!
//! - shard count and work-stealing order cannot change any result byte —
//!   sequential execution is literally the `shards = 1` special case;
//! - N shards pay one decision phase plus N cheap instantiations, not N
//!   full world builds (what the old per-vantage-thread runner did);
//! - finished records stream straight into shard-local reducers
//!   ([`crate::reducers`]) instead of first accumulating every
//!   [`TraceRecord`] in one `Vec`; the streamed aggregates are what the
//!   report path renders from, so the default campaign retains zero raw
//!   records ([`EngineConfig::keep_traces`] is the opt-in escape hatch
//!   for per-trace consumers).

use crate::campaign::{
    discover_in, finish, plan_with_churn, run_trace_observed, run_traceroute_survey, schedule,
    CampaignResult, DiscoveryStats, ScheduledTrace, VantageRoutes,
};
use crate::config::CampaignConfig;
use crate::events::{Event, Subscriber, UnitId};
use crate::reducers::{Reduce, RouteCtx, ShardReducers, TraceCtx};
use crate::trace::TraceRecord;
use ecn_pool::{PoolPlan, WorldBlueprint};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

pub use crate::mp::MpError;

/// How the unit list is ordered before being dealt to the shards. Results
/// are invariant under this knob (the determinism suite enforces it); it
/// exists so tests can prove scheduling-order independence. Serializes so
/// the multi-process worker request can carry it across the pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UnitOrder {
    /// Vantage-major, chunk-minor (the canonical order).
    #[default]
    AsScheduled,
    /// Reversed canonical order.
    Reversed,
    /// Seeded pseudo-random permutation.
    Shuffled(u64),
}

/// Engine knobs, separate from the §3 methodology in [`CampaignConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker shards. `None` = available parallelism. Any value produces
    /// byte-identical results; it only controls concurrency.
    pub shards: Option<usize>,
    /// Worker **processes**. `1` (the default) runs everything in this
    /// process; `N > 1` partitions the unit list round-robin across `N`
    /// supervised child processes (each running its own `shards`-wide
    /// work-stealing pool) and tree-merges their serialized
    /// [`ShardReducers`] — see [`crate::mp`]. Like `shards`, a pure
    /// concurrency/memory knob: any value renders byte-identical reports.
    /// Subscribers in multi-process mode observe parent-side supervision
    /// events (worker lifecycle, retries, checkpoints) rather than
    /// per-probe events; `keep_traces`/`keep_routes` stay incompatible
    /// (raw records do not cross the worker pipe) and yield
    /// [`MpError::Unsupported`].
    pub processes: usize,
    /// Target-list chunks per vantage (work granularity). Unlike `shards`
    /// this knob *is* part of the experiment definition: each chunk probes
    /// in its own world, so changing it changes the measured noise.
    pub target_chunks: usize,
    /// Keep the raw per-trace records (default: **off**). The report path
    /// no longer needs them — `FullReport` renders from
    /// `CampaignResult::aggregates` — so the default campaign retains
    /// zero `TraceRecord`s at peak and runs in O(aggregates) memory.
    /// Turn this on only for per-trace consumers (dataset export, pcap
    /// artefacts, the legacy `FullReport::from_traces` cross-check).
    pub keep_traces: bool,
    /// Keep the raw per-vantage [`crate::traceroute::TraceroutePath`]s
    /// (default: **off**). Figure 4 renders from the streamed
    /// [`crate::reducers::HopSurveyCounts`], so the survey's
    /// O(vantages × targets) path vector is an opt-in escape hatch for
    /// raw-route consumers (dataset export, path-level audits) — the
    /// mirror of [`Self::keep_traces`].
    pub keep_routes: bool,
    /// Unit scheduling order (results are invariant; see [`UnitOrder`]).
    pub unit_order: UnitOrder,
    /// Respawn retries per worker slot in supervised mode (default 2): a
    /// worker that crashes, hangs, or delivers a malformed payload is
    /// respawned with bounded exponential backoff, re-running exactly its
    /// unit slice — byte-identical by the commutative-merge contract. A
    /// slot that fails `1 + max_worker_retries` times turns into
    /// [`MpError::RetriesExhausted`].
    pub max_worker_retries: u32,
    /// Per-worker deadline (default off): a worker delivering no payload
    /// within this span is killed and the attempt counted as
    /// [`crate::mp::MpFailure::Hung`].
    pub worker_timeout: Option<Duration>,
    /// Checkpoint sink (default off): after every worker payload, persist
    /// the merged-so-far aggregates plus the completed-unit bitmap here
    /// via an atomic temp+rename write (see [`crate::mp::Checkpoint`]).
    /// Setting this routes the campaign through the supervised driver
    /// even at `processes = 1`.
    pub checkpoint: Option<PathBuf>,
    /// Resume source (default off): load a [`crate::mp::Checkpoint`],
    /// verify its campaign fingerprint, and re-run only the units absent
    /// from its bitmap. Renders byte-identical to an uninterrupted run.
    pub resume: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: None,
            processes: 1,
            target_chunks: 1,
            keep_traces: false,
            keep_routes: false,
            unit_order: UnitOrder::AsScheduled,
            max_worker_retries: 2,
            worker_timeout: None,
            checkpoint: None,
            resume: None,
        }
    }
}

impl EngineConfig {
    /// An engine pinned to `n` shards.
    pub fn with_shards(n: usize) -> EngineConfig {
        EngineConfig {
            shards: Some(n),
            ..EngineConfig::default()
        }
    }

    /// This configuration, fanned out across `n` worker processes.
    pub fn across_processes(self, n: usize) -> EngineConfig {
        EngineConfig {
            processes: n.max(1),
            ..self
        }
    }

    /// This configuration, with **both** raw-record escape hatches
    /// enabled: per-trace records and per-vantage traceroute paths. The
    /// legacy `FullReport::from_traces` derivation walks both vectors,
    /// so they travel together.
    pub fn keeping_traces(self) -> EngineConfig {
        EngineConfig {
            keep_traces: true,
            keep_routes: true,
            ..self
        }
    }

    /// This configuration, retaining only the raw traceroute paths (the
    /// per-trace records stay streamed).
    pub fn keeping_routes(self) -> EngineConfig {
        EngineConfig {
            keep_routes: true,
            ..self
        }
    }

    /// Whether this configuration routes through the supervised
    /// multi-process driver ([`crate::mp`]): worker processes, a
    /// checkpoint sink, or a resume source.
    pub fn supervised(&self) -> bool {
        self.processes > 1 || self.checkpoint.is_some() || self.resume.is_some()
    }
}

/// Where the wall-clock went, phase by phase. Per-unit phases
/// (`instantiate`, `probe`, `reduce`) are summed across shards — and, in
/// multi-process mode, across worker processes — so they can exceed
/// `wall` when execution overlaps. Serializes (`Duration` as
/// `[secs, nanos]`) so worker payloads can report their breakdown.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Building the world blueprint (once per campaign).
    pub blueprint_build: Duration,
    /// Discovery world instantiation + the DNS discovery loop.
    pub discovery: Duration,
    /// Stamping out per-unit worlds from the blueprint (summed).
    pub instantiate: Duration,
    /// Probing + traceroute inside unit worlds (summed).
    pub probe: Duration,
    /// Streaming reduction and final merge (summed).
    pub reduce: Duration,
    /// End-to-end wall clock.
    pub wall: Duration,
}

impl EngineTiming {
    /// Render a one-line breakdown for logs.
    pub fn render(&self) -> String {
        format!(
            "blueprint {:.3}s | discovery {:.1}s | instantiate {:.3}s | probe {:.1}s | reduce {:.3}s | wall {:.1}s",
            self.blueprint_build.as_secs_f64(),
            self.discovery.as_secs_f64(),
            self.instantiate.as_secs_f64(),
            self.probe.as_secs_f64(),
            self.reduce.as_secs_f64(),
            self.wall.as_secs_f64(),
        )
    }
}

/// A finished engine run.
pub struct EngineRun {
    /// The campaign products (traces, routes, aggregates, databases).
    pub result: CampaignResult,
    /// Phase timing breakdown.
    pub timing: EngineTiming,
    /// Shards actually used.
    pub shards: usize,
    /// Work units executed.
    pub units: usize,
    /// Peak number of `TraceRecord`s simultaneously *retained* across all
    /// shards (records held in vectors, not the O(1) in-flight record
    /// being probed/reduced). Zero on reducer-only runs — the memory
    /// claim `report_memory` benches.
    pub peak_resident_traces: usize,
    /// Worker processes used (`1` = everything ran in this process).
    pub processes: usize,
    /// Reducer merge rounds performed: ⌈log₂ shards-per-process⌉ for the
    /// in-process tree, plus ⌈log₂ processes⌉ for the cross-process tree
    /// in multi-process mode (see [`crate::reducers::merge_tree`]).
    pub merge_depth: usize,
    /// Peak resident set size in kB (`VmHWM`): the max across this
    /// process and every worker, each a per-process high-water mark. The
    /// megapool bench records it to show multi-process campaigns bound
    /// per-process memory. `0` where `/proc/self/status` is unavailable.
    pub peak_rss_kb: u64,
}

/// One work unit: one vantage's full schedule against one target chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Unit {
    pub(crate) vantage: usize,
    pub(crate) chunk: usize,
}

/// The canonical (vantage-major, chunk-minor) unit list — the order every
/// partitioning and permutation is defined against. The multi-process
/// partition (`crate::mp`) deals canonical *indices* round-robin, so the
/// union over workers is exactly this list for any process count.
pub(crate) fn canonical_units(vantage_count: usize, chunks: usize) -> Vec<Unit> {
    (0..vantage_count)
        .flat_map(|vantage| (0..chunks).map(move |chunk| Unit { vantage, chunk }))
        .collect()
}

/// Apply the scheduling-order knob (a pure permutation; results are
/// invariant — the determinism suite sweeps it).
pub(crate) fn apply_unit_order(units: &mut [Unit], order: UnitOrder) {
    match order {
        UnitOrder::AsScheduled => {}
        UnitOrder::Reversed => units.reverse(),
        UnitOrder::Shuffled(seed) => {
            units.shuffle(&mut ecn_netsim::derive_rng(seed, "engine/unit-order"))
        }
    }
}

/// What one unit produced (partial records when `target_chunks > 1`).
struct UnitOutput {
    unit: Unit,
    traces: Vec<TraceRecord>,
    routes: Option<VantageRoutes>,
}

/// Run the full campaign through the sharded engine.
///
/// This is [`run_engine_observed`] with the no-op `()` subscriber — the
/// monomorphized zero-cost path every existing caller and the
/// `alloc_regression`/`probe_hot_loop` gates exercise.
pub fn run_engine(plan: &PoolPlan, cfg: &CampaignConfig, eng: &EngineConfig) -> EngineRun {
    run_engine_observed(plan, cfg, eng, ()).0
}

/// Fallible [`run_engine`]: returns the typed [`MpError`] a supervised
/// multi-process campaign can fail with (retry budget exhausted,
/// checkpoint mismatch) instead of panicking. In-process campaigns
/// (`processes = 1`, no checkpoint/resume) cannot fail this way.
pub fn try_run_engine(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
) -> Result<EngineRun, MpError> {
    try_run_engine_observed(plan, cfg, eng, ()).map(|(run, ())| run)
}

/// Run the full campaign, streaming typed events into `subscriber` (see
/// [`crate::events`]): the root instance sees
/// [`Event::CampaignStarted`], each shard drives a
/// [`Subscriber::fork`], forks merge back deterministically, and
/// [`Subscriber::finish`] runs once before this returns. Results are
/// byte-identical to [`run_engine`] — subscribers observe, they cannot
/// perturb.
///
/// Infallible compatibility wrapper over [`try_run_engine_observed`];
/// supervised-campaign errors (which the `ecnudp` CLI reports with a
/// dedicated exit code) panic here.
pub fn run_engine_observed<S: Subscriber>(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
    subscriber: S,
) -> (EngineRun, S) {
    try_run_engine_observed(plan, cfg, eng, subscriber)
        .unwrap_or_else(|e| panic!("campaign failed: {e}"))
}

/// The fallible observed engine entry point. Configurations with
/// `eng.supervised()` (worker processes, checkpoint, or resume) route
/// through the supervised multi-process driver ([`crate::mp`]): the
/// subscriber then observes parent-side supervision events
/// ([`Event::WorkerFailed`], [`Event::UnitRetried`],
/// [`Event::CheckpointWritten`], …) instead of per-probe events, and the
/// run can fail with a typed [`MpError`] naming the worker and unit
/// range. Everything else runs in-process, infallibly.
pub fn try_run_engine_observed<S: Subscriber>(
    plan: &PoolPlan,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
    mut subscriber: S,
) -> Result<(EngineRun, S), MpError> {
    if eng.supervised() {
        if eng.keep_traces || eng.keep_routes {
            // Raw records do not cross the worker pipe; the CLI rejects
            // this combination with a friendlier message.
            return Err(MpError::Unsupported {
                what: "keep_traces/keep_routes under the supervised \
                       multi-process driver (raw records do not cross the \
                       worker pipe); run them with processes = 1 and no \
                       checkpoint/resume"
                    .into(),
            });
        }
        let run = crate::mp::run_multiprocess(plan, cfg, eng, &mut subscriber)?;
        if S::ENABLED {
            subscriber.finish();
        }
        return Ok((run, subscriber));
    }
    let wall0 = Instant::now();
    let mut timing = EngineTiming::default();
    let plan = plan_with_churn(plan, cfg);

    // Phase 1: decide the world once.
    let t0 = Instant::now();
    let bp = WorldBlueprint::build(&plan, cfg.seed);
    timing.blueprint_build = t0.elapsed();

    // Phase 2: discovery, in the canonical (root-stream) world.
    let t0 = Instant::now();
    let mut disco_world = bp.instantiate();
    let discovery = discover_in(&mut disco_world, cfg);
    timing.discovery = t0.elapsed();
    let targets = discovery.targets.clone();

    // Phase 3: the unit pool. Per-vantage schedules are fixed up front;
    // units exist per (vantage × target chunk).
    let vantage_count = disco_world.vantages.len();
    let chunks = eng.target_chunks.max(1);
    let per_vantage_sched = per_vantage_schedule(&disco_world, cfg, vantage_count);
    let mut units = canonical_units(vantage_count, chunks);
    apply_unit_order(&mut units, eng.unit_order);
    let unit_count = units.len();
    if S::ENABLED {
        subscriber.on_event(&Event::CampaignStarted {
            vantages: vantage_count,
            units: unit_count,
            targets: targets.len(),
        });
    }

    // Phases 4–5: work-stealing execution and deterministic merge.
    let pool = run_unit_pool(
        &bp,
        &targets,
        &per_vantage_sched,
        units,
        chunks,
        cfg,
        eng,
        &mut subscriber,
        &mut timing,
    );
    timing.wall = wall0.elapsed();

    if S::ENABLED {
        subscriber.finish();
    }
    let result = finish(
        disco_world,
        targets,
        DiscoveryStats::from(&discovery),
        pool.traces,
        pool.routes,
        pool.reducers,
    );
    Ok((
        EngineRun {
            result,
            timing,
            shards: pool.shard_count,
            units: unit_count,
            peak_resident_traces: pool.peak_resident_traces,
            processes: 1,
            merge_depth: crate::reducers::merge_depth(pool.shard_count),
            peak_rss_kb: crate::mp::peak_rss_kb(),
        },
        subscriber,
    ))
}

/// The full schedule, split per vantage (each unit runs exactly its
/// vantage's slice). World-clock-independent: `schedule` reads only the
/// vantage specs and the campaign calendar, so the multi-process workers
/// can compute identical schedules in a fresh (undiscovered) world.
pub(crate) fn per_vantage_schedule(
    world: &ecn_pool::Scenario,
    cfg: &CampaignConfig,
    vantage_count: usize,
) -> Vec<Vec<ScheduledTrace>> {
    let full = schedule(world, cfg);
    let mut per: Vec<Vec<ScheduledTrace>> = vec![Vec::new(); vantage_count];
    for st in full {
        per[st.vantage].push(st);
    }
    per
}

/// What the unit pool produced, after the deterministic merge.
pub(crate) struct PoolOutcome {
    /// Raw records in canonical order (empty unless `keep_traces`).
    pub(crate) traces: Vec<TraceRecord>,
    /// Raw routes in canonical order (empty unless `keep_routes`).
    pub(crate) routes: Vec<VantageRoutes>,
    /// Tree-merged shard reducers.
    pub(crate) reducers: ShardReducers,
    /// Shards actually used.
    pub(crate) shard_count: usize,
    /// Peak retained `TraceRecord`s across shards.
    pub(crate) peak_resident_traces: usize,
}

/// Phases 4–5 of the engine: execute `units` over a work-stealing shard
/// pool, then merge deterministically — a pairwise **tree** for the
/// (commutative) reducers, canonical unit order for the raw records.
/// Shared by the in-process engine and the multi-process worker (which
/// passes its round-robin partition of the canonical unit list).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_unit_pool<S: Subscriber>(
    bp: &WorldBlueprint,
    targets: &[Ipv4Addr],
    per_vantage_sched: &[Vec<ScheduledTrace>],
    units: Vec<Unit>,
    chunks: usize,
    cfg: &CampaignConfig,
    eng: &EngineConfig,
    subscriber: &mut S,
    timing: &mut EngineTiming,
) -> PoolOutcome {
    let unit_count = units.len();
    let shard_count = eng
        .shards
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, unit_count.max(1));

    // Phase 4: work-stealing execution. Each shard owns a deque, takes
    // from its front, and steals from the back of a round-robin victim.
    let queues: Vec<Mutex<VecDeque<Unit>>> = {
        let mut qs: Vec<VecDeque<Unit>> = (0..shard_count).map(|_| VecDeque::new()).collect();
        for (i, u) in units.into_iter().enumerate() {
            qs[i % shard_count].push_back(u);
        }
        qs.into_iter().map(Mutex::new).collect()
    };
    type ShardYield<S> = (
        Vec<UnitOutput>,
        ShardReducers,
        S,
        Duration,
        Duration,
        Duration,
    );
    let mut shard_yields: Vec<ShardYield<S>> = Vec::with_capacity(shard_count);
    let resident_traces = AtomicUsize::new(0);
    let peak_resident_traces = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let queues = &queues;
            let per_vantage_sched = &per_vantage_sched;
            let resident = (&resident_traces, &peak_resident_traces);
            // forked here, on the spawning thread, so `S` needs only Send
            let mut sub = subscriber.fork();
            handles.push(scope.spawn(move |_| {
                let mut outputs = Vec::new();
                let mut reducers = ShardReducers::default();
                let mut inst = Duration::ZERO;
                let mut probe = Duration::ZERO;
                let mut reduce = Duration::ZERO;
                let mut done = 0usize;
                while let Some(unit) = next_unit(s, queues) {
                    let chunk_targets = chunk_slice(targets, unit.chunk, chunks);
                    let out = run_unit(
                        bp,
                        unit,
                        &per_vantage_sched[unit.vantage],
                        chunk_targets,
                        cfg,
                        (eng.keep_traces, eng.keep_routes),
                        &mut reducers,
                        &mut sub,
                        resident,
                        (&mut inst, &mut probe, &mut reduce),
                    );
                    outputs.push(out);
                    done += 1;
                    if S::ENABLED {
                        sub.on_event(&Event::ShardProgress {
                            shard: s,
                            units_done: done,
                        });
                    }
                }
                (outputs, reducers, sub, inst, probe, reduce)
            }));
        }
        for h in handles {
            shard_yields.push(h.join().expect("engine shard"));
        }
    })
    .expect("engine threads");

    // Phase 5: deterministic merge. Reducers merge as a pairwise tree
    // (⌈log₂ shards⌉ rounds; commutativity + associativity make it equal
    // to any fold — `reducers::tree_merge_equals_flat_fold` pins that);
    // raw records merge in canonical unit order.
    let t0 = Instant::now();
    let mut outputs: Vec<UnitOutput> = Vec::with_capacity(unit_count);
    let mut shard_reducers: Vec<ShardReducers> = Vec::with_capacity(shard_count);
    for (outs, red, sub, inst, probe, reduce) in shard_yields {
        outputs.extend(outs);
        shard_reducers.push(red);
        subscriber.merge(sub);
        timing.instantiate += inst;
        timing.probe += probe;
        timing.reduce += reduce;
    }
    let reducers = crate::reducers::merge_tree(shard_reducers);
    outputs.sort_by_key(|o| (o.unit.vantage, o.unit.chunk));

    let mut traces: Vec<TraceRecord> = Vec::new();
    let mut routes: Vec<VantageRoutes> = Vec::new();
    let mut merged_for_vantage: Option<(Vec<TraceRecord>, Option<VantageRoutes>)> = None;
    let flush = |m: Option<(Vec<TraceRecord>, Option<VantageRoutes>)>,
                 traces: &mut Vec<TraceRecord>,
                 routes: &mut Vec<VantageRoutes>| {
        if let Some((t, r)) = m {
            traces.extend(t);
            routes.extend(r);
        }
    };
    let mut current_vantage = usize::MAX;
    for out in outputs {
        if out.unit.vantage != current_vantage {
            flush(merged_for_vantage.take(), &mut traces, &mut routes);
            current_vantage = out.unit.vantage;
            merged_for_vantage = Some((out.traces, out.routes));
        } else if let Some((merged, merged_routes)) = &mut merged_for_vantage {
            // later chunks extend the partial records in target order
            for (m, partial) in merged.iter_mut().zip(out.traces) {
                m.outcomes.extend(partial.outcomes);
            }
            if let (Some(r), Some(partial)) = (merged_routes.as_mut(), out.routes) {
                r.paths.extend(partial.paths);
            }
        }
    }
    flush(merged_for_vantage.take(), &mut traces, &mut routes);
    // merge in schedule order (stable: traces carry start times); compare
    // the vantage key by reference — a sort key would clone the String
    // on every comparison
    traces.sort_by(|a, b| {
        (a.started_at, a.vantage_key.as_str()).cmp(&(b.started_at, b.vantage_key.as_str()))
    });
    timing.reduce += t0.elapsed();

    PoolOutcome {
        traces,
        routes,
        reducers,
        shard_count,
        peak_resident_traces: peak_resident_traces.load(Ordering::Relaxed),
    }
}

/// Run the full campaign with default engine settings: reducer-only
/// (`keep_traces = false`), so the result carries streamed aggregates —
/// everything `FullReport` needs — and an empty trace vector. This is the
/// single entry point that replaced the old sequential/parallel runner
/// pair: results are byte-identical for every shard count.
///
/// ```
/// use ecn_core::{run_campaign, CampaignConfig};
/// use ecn_pool::PoolPlan;
///
/// // A tiny, fast campaign: 24 servers, compressed calendar, one trace
/// // per vantage, no traceroute survey.
/// let cfg = CampaignConfig {
///     discovery_rounds: 10,
///     traces_per_vantage: Some(1),
///     run_traceroute: false,
///     ..CampaignConfig::quick(7)
/// };
/// let result = run_campaign(&PoolPlan::scaled(24), &cfg);
/// assert_eq!(result.targets.len(), 24);
/// // the default path retains no raw records — only streamed aggregates
/// assert!(result.traces.is_empty() && result.routes.is_empty());
/// assert_eq!(result.aggregates.trace_stats.len(), 13); // one per vantage
/// ```
pub fn run_campaign(plan: &PoolPlan, cfg: &CampaignConfig) -> CampaignResult {
    run_engine(plan, cfg, &EngineConfig::default()).result
}

/// Run the full campaign retaining the raw per-trace records and
/// traceroute paths — the escape hatch for raw-record consumers (dataset
/// export, pcap artefacts, `FullReport::from_traces`).
pub fn run_campaign_with_traces(plan: &PoolPlan, cfg: &CampaignConfig) -> CampaignResult {
    run_engine(plan, cfg, &EngineConfig::default().keeping_traces()).result
}

/// The `c`-th of `chunks` balanced contiguous slices of `targets`;
/// concatenating the slices in chunk order reproduces the target order.
fn chunk_slice(targets: &[Ipv4Addr], c: usize, chunks: usize) -> &[Ipv4Addr] {
    let n = targets.len();
    &targets[c * n / chunks..(c + 1) * n / chunks]
}

/// Pop local work, else steal from the back of a victim.
///
/// Victims are visited round-robin starting at the shard's right-hand
/// neighbour, and each visit is a single lock-and-pop. The previous
/// "steal from the fullest" policy locked every queue once to measure
/// lengths and then re-locked the chosen victim — O(shards²) lock
/// traffic per steal across the drain phase, for no placement benefit
/// (results are order-invariant and units are uniform).
fn next_unit(s: usize, queues: &[Mutex<VecDeque<Unit>>]) -> Option<Unit> {
    if let Some(u) = queues[s].lock().pop_front() {
        return Some(u);
    }
    let n = queues.len();
    for off in 1..n {
        let v = (s + off) % n;
        if let Some(u) = queues[v].lock().pop_back() {
            return Some(u);
        }
    }
    None
}

/// Execute one unit: instantiate its world under the unit-identity RNG
/// domain, run the vantage's schedule against the unit's target chunk,
/// then (optionally) its slice of the traceroute survey — streaming every
/// finished record into the shard's reducers, and (when `S::ENABLED`)
/// typed events into the shard's subscriber fork.
#[allow(clippy::too_many_arguments)]
fn run_unit<S: Subscriber>(
    bp: &WorldBlueprint,
    unit: Unit,
    sched: &[ScheduledTrace],
    chunk_targets: &[Ipv4Addr],
    cfg: &CampaignConfig,
    (keep_traces, keep_routes): (bool, bool),
    reducers: &mut ShardReducers,
    sub: &mut S,
    (resident, peak): (&AtomicUsize, &AtomicUsize),
    (inst, probe, reduce): (&mut Duration, &mut Duration, &mut Duration),
) -> UnitOutput {
    let first_chunk = unit.chunk == 0;
    let uid = UnitId {
        vantage: unit.vantage,
        chunk: unit.chunk,
    };
    let t0 = Instant::now();
    // Scoped stamp: only this chunk's targets get server stacks. Packets
    // in a unit world flow exclusively between the vantages and the
    // chunk's targets, so the scoping is invisible to every outcome —
    // while cutting stamp cost from O(servers) to O(servers/chunks).
    let probed: HashSet<Ipv4Addr> = chunk_targets.iter().copied().collect();
    let mut sc = bp.instantiate_unit_scoped(unit.vantage, unit.chunk, &probed);
    if S::ENABLED {
        // purely observational: the tap counts, it cannot change outcomes
        sc.sim.install_event_tap();
    }
    *inst += t0.elapsed();

    let t0 = Instant::now();
    let mut unit_reduce = Duration::ZERO;
    let mut traces = Vec::with_capacity(if keep_traces { sched.len() } else { 0 });
    for (trace_index, st) in sched.iter().enumerate() {
        if sc.sim.now() < st.start {
            sc.sim.run_until(st.start);
        }
        let rec = run_trace_observed(
            &mut sc,
            unit.vantage,
            st.batch,
            chunk_targets,
            cfg,
            sub,
            uid,
        );
        let tr = Instant::now();
        reducers.observe_trace(
            &rec,
            &TraceCtx {
                first_chunk,
                vantage: unit.vantage,
                trace_index,
            },
        );
        unit_reduce += tr.elapsed();
        if S::ENABLED {
            sub.on_event(&Event::TraceVerdict {
                unit: uid,
                trace_index,
                record: &rec,
            });
        }
        if keep_traces {
            traces.push(rec);
            let now = resident.fetch_add(1, Ordering::Relaxed) + 1;
            peak.fetch_max(now, Ordering::Relaxed);
        }
    }
    let routes = cfg
        .run_traceroute
        .then(|| {
            let r = run_traceroute_survey(&mut sc, unit.vantage, chunk_targets, cfg);
            let tr = Instant::now();
            reducers.observe_routes(
                &r,
                &RouteCtx {
                    vantage: unit.vantage,
                    asdb: &sc.asdb,
                },
            );
            unit_reduce += tr.elapsed();
            // Figure 4 renders from HopSurveyCounts; the raw paths are
            // retained only on request, mirroring keep_traces
            keep_routes.then_some(r)
        })
        .flatten();
    if S::ENABLED {
        let counters = sc.sim.drain_event_counters();
        sub.on_event(&Event::SimFlushed {
            unit: uid,
            counters: &counters,
        });
        sub.on_event(&Event::UnitFinished {
            unit: uid,
            traces: sched.len(),
            observations: sched.len() * chunk_targets.len(),
        });
    }
    // the probe span encloses the reducer segments; report them disjointly
    *reduce += unit_reduce;
    *probe += t0.elapsed().saturating_sub(unit_reduce);

    UnitOutput {
        unit,
        traces,
        routes,
    }
}
