//! Trace records: the campaign's dataset format. One [`TraceRecord`] per
//! (vantage, repetition), each holding the four per-server outcomes of §3
//! — mirroring the structure of the dataset the paper published.

use crate::probes::{TcpProbeResult, UdpProbeResult};
use ecn_netsim::Nanos;
use ecn_stack::ValidationOutcome;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The four measurements taken per server per trace (plus, when the
/// modern-ECN validation pass is enabled, the validator's verdict).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerOutcome {
    /// Target address.
    pub server: Ipv4Addr,
    /// NTP over not-ECT UDP.
    pub udp_plain: UdpProbeResult,
    /// NTP over ECT(0)-marked UDP.
    pub udp_ect: UdpProbeResult,
    /// HTTP over TCP without ECN.
    pub tcp_plain: TcpProbeResult,
    /// HTTP over TCP with an ECN-setup SYN.
    pub tcp_ecn: TcpProbeResult,
    /// ECN-validation verdict (`None` when the pass is disabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub validation: Option<ValidationOutcome>,
}

impl ServerOutcome {
    /// Reachable with not-ECT but not with ECT(0) — the Figure 3a event.
    pub fn udp_diff_plain_only(&self) -> bool {
        self.udp_plain.reachable && !self.udp_ect.reachable
    }

    /// Reachable with ECT(0) but not with not-ECT — the Figure 3b event.
    pub fn udp_diff_ect_only(&self) -> bool {
        self.udp_ect.reachable && !self.udp_plain.reachable
    }
}

/// One complete trace: all four probes against every target, from one
/// vantage at one point in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Vantage key (stable identifier).
    pub vantage_key: String,
    /// Vantage display name (Table 2 spelling).
    pub vantage_name: String,
    /// Collection batch (1 = April/May, 2 = July/August).
    pub batch: u8,
    /// Virtual start time.
    pub started_at: Nanos,
    /// Per-server outcomes, in target order.
    pub outcomes: Vec<ServerOutcome>,
}

impl TraceRecord {
    /// Servers reachable via not-ECT UDP.
    pub fn udp_plain_reachable(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.udp_plain.reachable)
            .count()
    }

    /// Servers reachable via ECT(0) UDP.
    pub fn udp_ect_reachable(&self) -> usize {
        self.outcomes.iter().filter(|o| o.udp_ect.reachable).count()
    }

    /// Servers reachable via both markings.
    pub fn udp_both_reachable(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.udp_plain.reachable && o.udp_ect.reachable)
            .count()
    }

    /// Figure 2a value for this trace: of the not-ECT-reachable servers,
    /// the percentage also reachable with ECT(0).
    pub fn fig2a_pct(&self) -> f64 {
        let plain = self.udp_plain_reachable();
        if plain == 0 {
            return 100.0;
        }
        100.0 * self.udp_both_reachable() as f64 / plain as f64
    }

    /// Figure 2b value: of the ECT(0)-reachable servers, the percentage
    /// also reachable with not-ECT.
    pub fn fig2b_pct(&self) -> f64 {
        let ect = self.udp_ect_reachable();
        if ect == 0 {
            return 100.0;
        }
        100.0 * self.udp_both_reachable() as f64 / ect as f64
    }

    /// Servers answering HTTP (Figure 5 lower series).
    pub fn tcp_reachable(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.tcp_plain.reachable || o.tcp_ecn.reachable)
            .count()
    }

    /// Servers that negotiated ECN over TCP (Figure 5 upper series).
    pub fn tcp_ecn_negotiated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.tcp_ecn.negotiated_ecn)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp(reachable: bool) -> UdpProbeResult {
        UdpProbeResult {
            reachable,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        }
    }

    fn tcp(reachable: bool, negotiated: bool) -> TcpProbeResult {
        TcpProbeResult {
            reachable,
            http_status: reachable.then_some(302),
            requested_ecn: true,
            negotiated_ecn: negotiated,
            syn_ack_flags: None,
            close_reason: None,
        }
    }

    fn outcome(p: bool, e: bool, t: bool, n: bool) -> ServerOutcome {
        ServerOutcome {
            server: Ipv4Addr::new(192, 0, 2, 1),
            udp_plain: udp(p),
            udp_ect: udp(e),
            tcp_plain: tcp(t, false),
            tcp_ecn: tcp(t, n),
            validation: None,
        }
    }

    fn record(outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: "test".into(),
            vantage_name: "Test".into(),
            batch: 1,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    #[test]
    fn fig2_percentages() {
        // 4 servers: both, plain-only, ect-only, neither
        let r = record(vec![
            outcome(true, true, true, true),
            outcome(true, false, false, false),
            outcome(false, true, false, false),
            outcome(false, false, false, false),
        ]);
        assert_eq!(r.udp_plain_reachable(), 2);
        assert_eq!(r.udp_ect_reachable(), 2);
        assert_eq!(r.udp_both_reachable(), 1);
        assert!((r.fig2a_pct() - 50.0).abs() < 1e-9);
        assert!((r.fig2b_pct() - 50.0).abs() < 1e-9);
        assert!(r.outcomes[1].udp_diff_plain_only());
        assert!(!r.outcomes[1].udp_diff_ect_only());
        assert!(r.outcomes[2].udp_diff_ect_only());
    }

    #[test]
    fn empty_trace_is_100pct() {
        let r = record(vec![outcome(false, false, false, false)]);
        assert_eq!(r.fig2a_pct(), 100.0);
        assert_eq!(r.fig2b_pct(), 100.0);
    }

    #[test]
    fn tcp_counts() {
        let r = record(vec![
            outcome(true, true, true, true),
            outcome(true, true, true, false),
            outcome(true, true, false, false),
        ]);
        assert_eq!(r.tcp_reachable(), 2);
        assert_eq!(r.tcp_ecn_negotiated(), 1);
    }

    #[test]
    fn records_serialize_roundtrip() {
        let r = record(vec![outcome(true, true, true, true)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.outcomes.len(), 1);
        assert_eq!(back.vantage_key, "test");
        assert!(back.outcomes[0].udp_plain.reachable);
    }
}
