//! Streaming trace reducers: aggregate campaign results trace-by-trace as
//! the engine produces them, instead of accumulating every [`TraceRecord`]
//! in one `Vec` before analysis.
//!
//! ## Reducer contract
//!
//! Each shard of the execution engine owns one [`ShardReducers`] instance
//! and feeds it records the moment a work unit finishes them; at the end
//! the engine merges the shard instances. Because work stealing makes the
//! observation *order* nondeterministic, a reducer must be
//! **order-invariant**: observation and [`Reduce::merge`] must be
//! commutative and associative. In practice that means integer counters
//! (never running `f64` sums, whose rounding depends on order) and keyed
//! maps with deterministic iteration (`BTreeMap`). Ratios are computed
//! only in `finalize`-style accessors, from the merged integer counts.
//!
//! Per-logical-trace bookkeeping under target chunking: a trace split
//! across chunks arrives as several partial records, so anything counted
//! once per trace (e.g. the Table 2 trace denominator) is counted only
//! when `first_chunk` is true.

use crate::campaign::VantageRoutes;
use crate::trace::TraceRecord;
use std::collections::BTreeMap;

/// The streaming-reduction contract (see module docs): observe records in
/// any order, merge shard instances in any order, same result.
pub trait Reduce: Send + Sized {
    /// Fold one (possibly partial) trace record into the accumulator.
    /// `first_chunk` is true exactly once per logical trace.
    fn observe_trace(&mut self, rec: &TraceRecord, first_chunk: bool);
    /// Fold one (possibly partial) vantage traceroute survey.
    fn observe_routes(&mut self, _routes: &VantageRoutes) {}
    /// Absorb another shard's accumulator.
    fn merge(&mut self, other: Self);
}

// ---------------------------------------------------------------- table 2

/// Per-vantage Table 2 counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VantageTable2 {
    /// Logical traces observed from this vantage.
    pub traces: u64,
    /// (server, trace) observations reachable via not-ECT UDP but not
    /// ECT(0) — the per-vantage ECT-marked-reachability deficit.
    pub udp_ect_unreachable: u64,
    /// Of those, TCP-reachable observations failing to negotiate ECN.
    pub fail_tcp_ecn: u64,
    /// Of those, TCP-reachable observations that did negotiate.
    pub ok_tcp_ecn: u64,
}

/// Streaming accumulator behind Table 2 (§4.4): per-vantage differential
/// reachability plus the global UDP/TCP contingency table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table2Counts {
    /// Per-vantage counters, keyed by vantage name (Table 2 spelling).
    pub per_vantage: BTreeMap<String, VantageTable2>,
    /// 2×2 contingency counts over (udp_diff, refuses_tcp_ecn), restricted
    /// to observations where both verdicts are defined.
    pub n11: u64,
    /// diff ∧ negotiates.
    pub n10: u64,
    /// ¬diff ∧ refuses.
    pub n01: u64,
    /// ¬diff ∧ negotiates.
    pub n00: u64,
    /// UDP-ECT-blocked, TCP-reachable observations.
    pub blocked_tcp_reachable: u64,
    /// Of those, observations that negotiated ECN anyway.
    pub blocked_negotiated: u64,
}

impl Reduce for Table2Counts {
    fn observe_trace(&mut self, rec: &TraceRecord, first_chunk: bool) {
        let mut udp_unreach = 0;
        let mut fail = 0;
        let mut ok = 0;
        for o in &rec.outcomes {
            let diff = o.udp_diff_plain_only();
            if diff {
                udp_unreach += 1;
                if o.tcp_ecn.reachable {
                    self.blocked_tcp_reachable += 1;
                    if o.tcp_ecn.negotiated_ecn {
                        ok += 1;
                        self.blocked_negotiated += 1;
                    } else {
                        fail += 1;
                    }
                }
            }
            if o.udp_plain.reachable && o.tcp_ecn.reachable {
                match (diff, !o.tcp_ecn.negotiated_ecn) {
                    (true, true) => self.n11 += 1,
                    (true, false) => self.n10 += 1,
                    (false, true) => self.n01 += 1,
                    (false, false) => self.n00 += 1,
                }
            }
        }
        let e = self
            .per_vantage
            .entry(rec.vantage_name.clone())
            .or_default();
        if first_chunk {
            e.traces += 1;
        }
        e.udp_ect_unreachable += udp_unreach;
        e.fail_tcp_ecn += fail;
        e.ok_tcp_ecn += ok;
    }

    fn merge(&mut self, other: Self) {
        for (name, v) in other.per_vantage {
            let e = self.per_vantage.entry(name).or_default();
            e.traces += v.traces;
            e.udp_ect_unreachable += v.udp_ect_unreachable;
            e.fail_tcp_ecn += v.fail_tcp_ecn;
            e.ok_tcp_ecn += v.ok_tcp_ecn;
        }
        self.n11 += other.n11;
        self.n10 += other.n10;
        self.n01 += other.n01;
        self.n00 += other.n00;
        self.blocked_tcp_reachable += other.blocked_tcp_reachable;
        self.blocked_negotiated += other.blocked_negotiated;
    }
}

impl Table2Counts {
    /// φ correlation between "UDP-ECT unreachable" and "refuses TCP ECN",
    /// computed from the merged integer contingency table.
    pub fn phi(&self) -> f64 {
        let (n11, n10, n01, n00) = (
            self.n11 as f64,
            self.n10 as f64,
            self.n01 as f64,
            self.n00 as f64,
        );
        let denom = ((n11 + n10) * (n01 + n00) * (n11 + n01) * (n10 + n00)).sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            (n11 * n00 - n10 * n01) / denom
        }
    }

    /// Fraction of blocked-but-TCP-reachable observations that negotiated
    /// ECN (the paper's "majority" claim).
    pub fn blocked_but_negotiates(&self) -> f64 {
        if self.blocked_tcp_reachable == 0 {
            0.0
        } else {
            self.blocked_negotiated as f64 / self.blocked_tcp_reachable as f64
        }
    }
}

// ---------------------------------------------------------------- figure 2

/// Per-vantage UDP/TCP reachability counters (Figure 2/5 numerators and
/// denominators, kept linear so streaming stays order-invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VantageReachability {
    /// Logical traces observed.
    pub traces: u64,
    /// (server, trace) observations reachable via not-ECT UDP.
    pub udp_plain: u64,
    /// Observations reachable via ECT(0) UDP.
    pub udp_ect: u64,
    /// Observations reachable both ways.
    pub udp_both: u64,
    /// Observations answering HTTP on either TCP probe.
    pub tcp_reachable: u64,
    /// Observations negotiating ECN over TCP.
    pub tcp_negotiated: u64,
}

/// Streaming reachability accumulator (the counts behind Figures 2 and 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachabilityCounts {
    /// Per-vantage counters, keyed by vantage key.
    pub per_vantage: BTreeMap<String, VantageReachability>,
}

impl Reduce for ReachabilityCounts {
    fn observe_trace(&mut self, rec: &TraceRecord, first_chunk: bool) {
        let e = self.per_vantage.entry(rec.vantage_key.clone()).or_default();
        if first_chunk {
            e.traces += 1;
        }
        for o in &rec.outcomes {
            e.udp_plain += u64::from(o.udp_plain.reachable);
            e.udp_ect += u64::from(o.udp_ect.reachable);
            e.udp_both += u64::from(o.udp_plain.reachable && o.udp_ect.reachable);
            e.tcp_reachable += u64::from(o.tcp_plain.reachable || o.tcp_ecn.reachable);
            e.tcp_negotiated += u64::from(o.tcp_ecn.negotiated_ecn);
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, v) in other.per_vantage {
            let e = self.per_vantage.entry(key).or_default();
            e.traces += v.traces;
            e.udp_plain += v.udp_plain;
            e.udp_ect += v.udp_ect;
            e.udp_both += v.udp_both;
            e.tcp_reachable += v.tcp_reachable;
            e.tcp_negotiated += v.tcp_negotiated;
        }
    }
}

impl ReachabilityCounts {
    /// Aggregate Figure 2a value: of not-ECT-reachable observations, the
    /// percentage also reachable with ECT(0).
    pub fn pct_a(&self) -> f64 {
        let plain: u64 = self.per_vantage.values().map(|v| v.udp_plain).sum();
        let both: u64 = self.per_vantage.values().map(|v| v.udp_both).sum();
        if plain == 0 {
            100.0
        } else {
            100.0 * both as f64 / plain as f64
        }
    }

    /// Aggregate Figure 2b value.
    pub fn pct_b(&self) -> f64 {
        let ect: u64 = self.per_vantage.values().map(|v| v.udp_ect).sum();
        let both: u64 = self.per_vantage.values().map(|v| v.udp_both).sum();
        if ect == 0 {
            100.0
        } else {
            100.0 * both as f64 / ect as f64
        }
    }

    /// Aggregate ECN negotiation share among TCP-reachable observations
    /// (Figure 5's headline).
    pub fn negotiated_pct(&self) -> f64 {
        let reach: u64 = self.per_vantage.values().map(|v| v.tcp_reachable).sum();
        let neg: u64 = self.per_vantage.values().map(|v| v.tcp_negotiated).sum();
        if reach == 0 {
            0.0
        } else {
            100.0 * neg as f64 / reach as f64
        }
    }
}

// ---------------------------------------------------------------- survey

/// Streaming traceroute-survey accumulator (the counts behind Figure 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SurveyCounts {
    /// Paths observed per vantage key.
    pub paths_per_vantage: BTreeMap<String, u64>,
    /// Responding hop observations.
    pub hops_responded: u64,
    /// Silent hops (`*`).
    pub hops_silent: u64,
    /// Responding hops whose quotes all still carried the sent mark.
    pub hops_pass: u64,
    /// Responding hops showing a modified mark in at least one quote.
    pub hops_modified: u64,
    /// Modified hops with disagreeing probes (the "sometimes" signature).
    pub hops_mixed: u64,
    /// Paths whose ICMP port-unreachable reached back from the target.
    pub reached_destination: u64,
}

impl Reduce for SurveyCounts {
    fn observe_trace(&mut self, _rec: &TraceRecord, _first_chunk: bool) {}

    fn observe_routes(&mut self, routes: &VantageRoutes) {
        *self
            .paths_per_vantage
            .entry(routes.vantage_key.clone())
            .or_default() += routes.paths.len() as u64;
        for path in &routes.paths {
            self.reached_destination += u64::from(path.reached_destination);
            for hop in &path.hops {
                if hop.router.is_none() {
                    self.hops_silent += 1;
                    continue;
                }
                self.hops_responded += 1;
                if hop.modified(path.sent_ecn) {
                    self.hops_modified += 1;
                    if hop.mixed(path.sent_ecn) {
                        self.hops_mixed += 1;
                    }
                } else {
                    self.hops_pass += 1;
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, n) in other.paths_per_vantage {
            *self.paths_per_vantage.entry(key).or_default() += n;
        }
        self.hops_responded += other.hops_responded;
        self.hops_silent += other.hops_silent;
        self.hops_pass += other.hops_pass;
        self.hops_modified += other.hops_modified;
        self.hops_mixed += other.hops_mixed;
        self.reached_destination += other.reached_destination;
    }
}

// ---------------------------------------------------------------- composite

/// The reducer set each engine shard owns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardReducers {
    /// Table 2 accumulator.
    pub table2: Table2Counts,
    /// Figure 2/5 reachability accumulator.
    pub reachability: ReachabilityCounts,
    /// Traceroute survey accumulator.
    pub survey: SurveyCounts,
}

impl Reduce for ShardReducers {
    fn observe_trace(&mut self, rec: &TraceRecord, first_chunk: bool) {
        self.table2.observe_trace(rec, first_chunk);
        self.reachability.observe_trace(rec, first_chunk);
    }

    fn observe_routes(&mut self, routes: &VantageRoutes) {
        self.survey.observe_routes(routes);
    }

    fn merge(&mut self, other: Self) {
        self.table2.merge(other.table2);
        self.reachability.merge(other.reachability);
        self.survey.merge(other.survey);
    }
}

/// Finalized aggregates attached to an engine run, alongside (or instead
/// of) the raw trace vector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignAggregates {
    /// Table 2 counters.
    pub table2: Table2Counts,
    /// Figure 2/5 counters.
    pub reachability: ReachabilityCounts,
    /// Traceroute survey counters.
    pub survey: SurveyCounts,
}

impl From<ShardReducers> for CampaignAggregates {
    fn from(r: ShardReducers) -> Self {
        CampaignAggregates {
            table2: r.table2,
            reachability: r.reachability,
            survey: r.survey,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;
    use std::net::Ipv4Addr;

    fn outcome(i: u8, plain: bool, ect: bool, tcp: bool, neg: bool) -> ServerOutcome {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcpr = |r, n| TcpProbeResult {
            reachable: r,
            http_status: if r { Some(302) } else { None },
            requested_ecn: true,
            negotiated_ecn: n,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: Ipv4Addr::new(10, 0, 0, i),
            udp_plain: udp(plain),
            udp_ect: udp(ect),
            tcp_plain: tcpr(tcp, false),
            tcp_ecn: tcpr(tcp, neg),
        }
    }

    fn rec(name: &str, outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: name.to_lowercase(),
            vantage_name: name.into(),
            batch: 2,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    #[test]
    fn table2_counts_match_batch_analysis() {
        let traces = vec![
            rec(
                "A",
                vec![
                    outcome(1, true, false, true, true),
                    outcome(2, true, false, true, false),
                    outcome(3, true, true, true, true),
                ],
            ),
            rec("B", vec![outcome(4, true, false, false, false)]),
        ];
        let mut streamed = Table2Counts::default();
        for t in &traces {
            streamed.observe_trace(t, true);
        }
        let batch = crate::analysis::table2(&traces);
        // per-vantage averages agree with the batch analysis
        for row in &batch.rows {
            let v = &streamed.per_vantage[&row.location];
            assert_eq!(v.udp_ect_unreachable as f64 / v.traces as f64, {
                row.avg_udp_ect_unreachable
            });
            assert_eq!(
                v.fail_tcp_ecn as f64 / v.traces as f64,
                row.avg_fail_tcp_ecn
            );
        }
        assert!((streamed.phi() - batch.phi).abs() < 1e-12);
        assert!((streamed.blocked_but_negotiates() - batch.blocked_but_negotiates).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_invariant() {
        let a = rec("A", vec![outcome(1, true, false, true, true)]);
        let b = rec("B", vec![outcome(2, true, true, true, false)]);
        let c = rec("A", vec![outcome(3, false, true, false, false)]);

        let mut left = ShardReducers::default();
        left.observe_trace(&a, true);
        left.observe_trace(&b, true);
        let mut right = ShardReducers::default();
        right.observe_trace(&c, true);
        left.merge(right);

        let mut other_order = ShardReducers::default();
        other_order.observe_trace(&c, true);
        let mut rest = ShardReducers::default();
        rest.observe_trace(&b, true);
        rest.observe_trace(&a, true);
        other_order.merge(rest);

        assert_eq!(left, other_order);
    }

    #[test]
    fn partial_chunks_count_one_trace() {
        let mut r = ReachabilityCounts::default();
        // one logical trace split across two chunks
        r.observe_trace(&rec("A", vec![outcome(1, true, true, true, true)]), true);
        r.observe_trace(
            &rec("A", vec![outcome(2, true, false, false, false)]),
            false,
        );
        let v = &r.per_vantage["a"];
        assert_eq!(v.traces, 1);
        assert_eq!(v.udp_plain, 2);
        assert_eq!(v.udp_both, 1);
    }
}
