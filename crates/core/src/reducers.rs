//! Streaming trace reducers: aggregate campaign results trace-by-trace as
//! the engine produces them, instead of accumulating every [`TraceRecord`]
//! in one `Vec` before analysis.
//!
//! These accumulators are the **single source of truth for the report
//! path**: [`CampaignAggregates`] carries everything
//! [`crate::analysis::FullReport::from_aggregates`] needs to render every
//! table and figure byte-identically to the legacy trace-walk derivation
//! (`crates/core/tests/report_differential.rs` proves it), so the default
//! campaign runs with `EngineConfig::keep_traces = false` and never holds
//! an O(traces × servers) structure.
//!
//! ## Reducer contract
//!
//! Each shard of the execution engine owns one [`ShardReducers`] instance
//! and feeds it records the moment a work unit finishes them; at the end
//! the engine merges the shard instances. Because work stealing makes the
//! observation *order* nondeterministic, a reducer must be
//! **order-invariant**: observation and [`Reduce::merge`] must be
//! commutative and associative. In practice that means integer counters
//! (never running `f64` sums, whose rounding depends on order) and keyed
//! maps with deterministic iteration (`BTreeMap`). Ratios are computed
//! only in `finalize`-style accessors, from the merged integer counts.
//!
//! Per-logical-trace bookkeeping under target chunking: a trace split
//! across chunks arrives as several partial records, so anything counted
//! once per trace (e.g. the Table 2 trace denominator) is counted only
//! when [`TraceCtx::first_chunk`] is true. Per-trace *figures* (the
//! Figure 2/5 bars are one bar per trace) live in [`TraceStats`]: a map
//! keyed by the chunk-invariant unit identity `(vantage, trace index)`
//! whose values are small integer counters — O(#traces) entries, not
//! O(#traces × #servers) records.

use crate::analysis::differential::ServerDifferential;
use crate::campaign::VantageRoutes;
use crate::trace::TraceRecord;
use ecn_asdb::AsDb;
use ecn_netsim::Nanos;
use ecn_wire::Ecn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Chunk-invariant identity of one observed (partial) trace record. The
/// engine derives it from the work unit, never from the shard, so two
/// chunks of the same logical trace carry the same `(vantage,
/// trace_index)` no matter which shard ran them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// True exactly once per logical trace (the chunk-0 partial).
    pub first_chunk: bool,
    /// Vantage index (Table 2 order).
    pub vantage: usize,
    /// Index of this trace in the vantage's schedule.
    pub trace_index: usize,
}

impl TraceCtx {
    /// Context for observing a whole (unchunked) trace — what the legacy
    /// trace-walk analyses use when replaying a `&[TraceRecord]`.
    pub fn whole(vantage: usize, trace_index: usize) -> TraceCtx {
        TraceCtx {
            first_chunk: true,
            vantage,
            trace_index,
        }
    }
}

/// Context for observing a (partial) traceroute survey.
#[derive(Debug, Clone, Copy)]
pub struct RouteCtx<'a> {
    /// Vantage index (Table 2 order).
    pub vantage: usize,
    /// IP→AS database, for classifying strip locations at observe time.
    pub asdb: &'a AsDb,
}

/// The streaming-reduction contract (see module docs): observe records in
/// any order, merge shard instances in any order, same result.
pub trait Reduce: Send + Sized {
    /// Fold one (possibly partial) trace record into the accumulator.
    fn observe_trace(&mut self, _rec: &TraceRecord, _ctx: &TraceCtx) {}
    /// Fold one (possibly partial) vantage traceroute survey.
    fn observe_routes(&mut self, _routes: &VantageRoutes, _ctx: &RouteCtx<'_>) {}
    /// Absorb another shard's accumulator.
    fn merge(&mut self, other: Self);
}

// ---------------------------------------------------------------- table 2

/// Per-vantage Table 2 counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageTable2 {
    /// Logical traces observed from this vantage.
    pub traces: u64,
    /// (server, trace) observations reachable via not-ECT UDP but not
    /// ECT(0) — the per-vantage ECT-marked-reachability deficit.
    pub udp_ect_unreachable: u64,
    /// Of those, TCP-reachable observations failing to negotiate ECN.
    pub fail_tcp_ecn: u64,
    /// Of those, TCP-reachable observations that did negotiate.
    pub ok_tcp_ecn: u64,
}

/// Streaming accumulator behind Table 2 (§4.4): per-vantage differential
/// reachability plus the global UDP/TCP contingency table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Counts {
    /// Per-vantage counters, keyed by vantage name (Table 2 spelling).
    pub per_vantage: BTreeMap<String, VantageTable2>,
    /// 2×2 contingency counts over (udp_diff, refuses_tcp_ecn), restricted
    /// to observations where both verdicts are defined.
    pub n11: u64,
    /// diff ∧ negotiates.
    pub n10: u64,
    /// ¬diff ∧ refuses.
    pub n01: u64,
    /// ¬diff ∧ negotiates.
    pub n00: u64,
    /// UDP-ECT-blocked, TCP-reachable observations.
    pub blocked_tcp_reachable: u64,
    /// Of those, observations that negotiated ECN anyway.
    pub blocked_negotiated: u64,
}

impl Reduce for Table2Counts {
    fn observe_trace(&mut self, rec: &TraceRecord, ctx: &TraceCtx) {
        let mut udp_unreach = 0;
        let mut fail = 0;
        let mut ok = 0;
        for o in &rec.outcomes {
            let diff = o.udp_diff_plain_only();
            if diff {
                udp_unreach += 1;
                if o.tcp_ecn.reachable {
                    self.blocked_tcp_reachable += 1;
                    if o.tcp_ecn.negotiated_ecn {
                        ok += 1;
                        self.blocked_negotiated += 1;
                    } else {
                        fail += 1;
                    }
                }
            }
            if o.udp_plain.reachable && o.tcp_ecn.reachable {
                match (diff, !o.tcp_ecn.negotiated_ecn) {
                    (true, true) => self.n11 += 1,
                    (true, false) => self.n10 += 1,
                    (false, true) => self.n01 += 1,
                    (false, false) => self.n00 += 1,
                }
            }
        }
        let e = self
            .per_vantage
            .entry(rec.vantage_name.clone())
            .or_default();
        if ctx.first_chunk {
            e.traces += 1;
        }
        e.udp_ect_unreachable += udp_unreach;
        e.fail_tcp_ecn += fail;
        e.ok_tcp_ecn += ok;
    }

    fn merge(&mut self, other: Self) {
        for (name, v) in other.per_vantage {
            let e = self.per_vantage.entry(name).or_default();
            e.traces += v.traces;
            e.udp_ect_unreachable += v.udp_ect_unreachable;
            e.fail_tcp_ecn += v.fail_tcp_ecn;
            e.ok_tcp_ecn += v.ok_tcp_ecn;
        }
        self.n11 += other.n11;
        self.n10 += other.n10;
        self.n01 += other.n01;
        self.n00 += other.n00;
        self.blocked_tcp_reachable += other.blocked_tcp_reachable;
        self.blocked_negotiated += other.blocked_negotiated;
    }
}

impl Table2Counts {
    /// φ correlation between "UDP-ECT unreachable" and "refuses TCP ECN",
    /// computed from the merged integer contingency table.
    pub fn phi(&self) -> f64 {
        let (n11, n10, n01, n00) = (
            self.n11 as f64,
            self.n10 as f64,
            self.n01 as f64,
            self.n00 as f64,
        );
        let denom = ((n11 + n10) * (n01 + n00) * (n11 + n01) * (n10 + n00)).sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            (n11 * n00 - n10 * n01) / denom
        }
    }

    /// Fraction of blocked-but-TCP-reachable observations that negotiated
    /// ECN (the paper's "majority" claim).
    pub fn blocked_but_negotiates(&self) -> f64 {
        if self.blocked_tcp_reachable == 0 {
            0.0
        } else {
            self.blocked_negotiated as f64 / self.blocked_tcp_reachable as f64
        }
    }
}

// ---------------------------------------------------------------- figure 2

/// Per-vantage UDP/TCP reachability counters (Figure 2/5 numerators and
/// denominators, kept linear so streaming stays order-invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageReachability {
    /// Logical traces observed.
    pub traces: u64,
    /// (server, trace) observations reachable via not-ECT UDP.
    pub udp_plain: u64,
    /// Observations reachable via ECT(0) UDP.
    pub udp_ect: u64,
    /// Observations reachable both ways.
    pub udp_both: u64,
    /// Observations answering HTTP on either TCP probe.
    pub tcp_reachable: u64,
    /// Observations negotiating ECN over TCP.
    pub tcp_negotiated: u64,
}

/// Streaming reachability accumulator (the per-vantage counts behind
/// Figures 2 and 5's headline ratios).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityCounts {
    /// Per-vantage counters, keyed by vantage key.
    pub per_vantage: BTreeMap<String, VantageReachability>,
}

impl Reduce for ReachabilityCounts {
    fn observe_trace(&mut self, rec: &TraceRecord, ctx: &TraceCtx) {
        let e = self.per_vantage.entry(rec.vantage_key.clone()).or_default();
        if ctx.first_chunk {
            e.traces += 1;
        }
        for o in &rec.outcomes {
            e.udp_plain += u64::from(o.udp_plain.reachable);
            e.udp_ect += u64::from(o.udp_ect.reachable);
            e.udp_both += u64::from(o.udp_plain.reachable && o.udp_ect.reachable);
            e.tcp_reachable += u64::from(o.tcp_plain.reachable || o.tcp_ecn.reachable);
            e.tcp_negotiated += u64::from(o.tcp_ecn.negotiated_ecn);
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, v) in other.per_vantage {
            let e = self.per_vantage.entry(key).or_default();
            e.traces += v.traces;
            e.udp_plain += v.udp_plain;
            e.udp_ect += v.udp_ect;
            e.udp_both += v.udp_both;
            e.tcp_reachable += v.tcp_reachable;
            e.tcp_negotiated += v.tcp_negotiated;
        }
    }
}

impl ReachabilityCounts {
    /// Aggregate Figure 2a value: of not-ECT-reachable observations, the
    /// percentage also reachable with ECT(0).
    pub fn pct_a(&self) -> f64 {
        let plain: u64 = self.per_vantage.values().map(|v| v.udp_plain).sum();
        let both: u64 = self.per_vantage.values().map(|v| v.udp_both).sum();
        if plain == 0 {
            100.0
        } else {
            100.0 * both as f64 / plain as f64
        }
    }

    /// Aggregate Figure 2b value.
    pub fn pct_b(&self) -> f64 {
        let ect: u64 = self.per_vantage.values().map(|v| v.udp_ect).sum();
        let both: u64 = self.per_vantage.values().map(|v| v.udp_both).sum();
        if ect == 0 {
            100.0
        } else {
            100.0 * both as f64 / ect as f64
        }
    }

    /// Aggregate ECN negotiation share among TCP-reachable observations
    /// (Figure 5's headline).
    pub fn negotiated_pct(&self) -> f64 {
        let reach: u64 = self.per_vantage.values().map(|v| v.tcp_reachable).sum();
        let neg: u64 = self.per_vantage.values().map(|v| v.tcp_negotiated).sum();
        if reach == 0 {
            0.0
        } else {
            100.0 * neg as f64 / reach as f64
        }
    }
}

// ------------------------------------------------------- per-trace figures

/// Integer counters for one logical trace — the data behind one Figure 2
/// bar and one Figure 5 bar. Chunk partials of the same trace merge by
/// addition; the identity fields are set by whichever chunk arrives first
/// and the start time by the chunk-0 partial (whose world's clock is the
/// one the legacy trace vector reports).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounters {
    /// Vantage key (stable identifier).
    pub vantage_key: String,
    /// Vantage display name (Table 2 spelling).
    pub vantage_name: String,
    /// Virtual start time of the chunk-0 partial; `None` until observed.
    pub started_at: Option<Nanos>,
    /// Servers reachable via not-ECT UDP.
    pub udp_plain: u32,
    /// Servers reachable via ECT(0) UDP.
    pub udp_ect: u32,
    /// Servers reachable both ways.
    pub udp_both: u32,
    /// Servers answering HTTP on either TCP probe.
    pub tcp_reachable: u32,
    /// Servers negotiating ECN over TCP.
    pub tcp_negotiated: u32,
}

impl TraceCounters {
    fn absorb(&mut self, other: TraceCounters) {
        if self.vantage_key.is_empty() {
            self.vantage_key = other.vantage_key;
            self.vantage_name = other.vantage_name;
        }
        if self.started_at.is_none() {
            self.started_at = other.started_at;
        }
        self.udp_plain += other.udp_plain;
        self.udp_ect += other.udp_ect;
        self.udp_both += other.udp_both;
        self.tcp_reachable += other.tcp_reachable;
        self.tcp_negotiated += other.tcp_negotiated;
    }
}

/// Streaming per-logical-trace accumulator: one [`TraceCounters`] per
/// `(vantage, trace index)`. This is what lets the report path rebuild the
/// per-trace Figure 2/5 bars — and the campaign-order trace sequence their
/// averages are computed over — without retaining any [`TraceRecord`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Counters keyed by the chunk-invariant trace identity.
    pub per_trace: BTreeMap<(usize, usize), TraceCounters>,
}

impl Reduce for TraceStats {
    fn observe_trace(&mut self, rec: &TraceRecord, ctx: &TraceCtx) {
        let mut c = TraceCounters {
            vantage_key: rec.vantage_key.clone(),
            vantage_name: rec.vantage_name.clone(),
            started_at: ctx.first_chunk.then_some(rec.started_at),
            ..TraceCounters::default()
        };
        for o in &rec.outcomes {
            c.udp_plain += u32::from(o.udp_plain.reachable);
            c.udp_ect += u32::from(o.udp_ect.reachable);
            c.udp_both += u32::from(o.udp_plain.reachable && o.udp_ect.reachable);
            c.tcp_reachable += u32::from(o.tcp_plain.reachable || o.tcp_ecn.reachable);
            c.tcp_negotiated += u32::from(o.tcp_ecn.negotiated_ecn);
        }
        self.per_trace
            .entry((ctx.vantage, ctx.trace_index))
            .or_default()
            .absorb(c);
    }

    fn merge(&mut self, other: Self) {
        for (key, v) in other.per_trace {
            self.per_trace.entry(key).or_default().absorb(v);
        }
    }
}

impl TraceStats {
    /// Logical traces observed.
    pub fn len(&self) -> usize {
        self.per_trace.len()
    }

    /// True when no trace has been observed.
    pub fn is_empty(&self) -> bool {
        self.per_trace.is_empty()
    }

    /// Traces in campaign order — the exact order of the legacy
    /// `CampaignResult::traces` vector, which the engine sorts by
    /// `(started_at, vantage_key)` with schedule order as the (stable)
    /// tiebreak within a vantage.
    pub fn ordered(&self) -> Vec<&TraceCounters> {
        let mut v: Vec<(&(usize, usize), &TraceCounters)> = self.per_trace.iter().collect();
        v.sort_by(|(&(_, ai), a), (&(_, bi), b)| {
            (a.started_at.unwrap_or(Nanos::MAX), &a.vantage_key, ai).cmp(&(
                b.started_at.unwrap_or(Nanos::MAX),
                &b.vantage_key,
                bi,
            ))
        });
        v.into_iter().map(|(_, t)| t).collect()
    }

    /// Vantage display names in first-seen campaign order — the row order
    /// of Table 2 / Figure 3 and the bar order of the per-vantage figures.
    pub fn location_order(&self) -> Vec<String> {
        location_order_of(&self.ordered())
    }
}

/// Vantage display names in first-seen order over an already-sorted trace
/// sequence (see [`TraceStats::ordered`]).
pub fn location_order_of(ordered: &[&TraceCounters]) -> Vec<String> {
    let mut order = Vec::new();
    for t in ordered {
        if !order.contains(&t.vantage_name) {
            order.push(t.vantage_name.clone());
        }
    }
    order
}

// ---------------------------------------------------------------- figure 3

/// Streaming accumulator behind Figure 3: per (location, server)
/// differential-reachability counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DifferentialCounts {
    /// location name → server → counters.
    pub per_location: BTreeMap<String, BTreeMap<Ipv4Addr, ServerDifferential>>,
}

impl Reduce for DifferentialCounts {
    fn observe_trace(&mut self, rec: &TraceRecord, _ctx: &TraceCtx) {
        let loc = self
            .per_location
            .entry(rec.vantage_name.clone())
            .or_default();
        for o in &rec.outcomes {
            let d = loc.entry(o.server).or_default();
            d.traces += 1;
            d.plain_traces += u32::from(o.udp_plain.reachable);
            d.ect_traces += u32::from(o.udp_ect.reachable);
            d.diff_a += u32::from(o.udp_diff_plain_only());
            d.diff_b += u32::from(o.udp_diff_ect_only());
        }
    }

    fn merge(&mut self, other: Self) {
        for (name, servers) in other.per_location {
            let loc = self.per_location.entry(name).or_default();
            for (addr, v) in servers {
                let d = loc.entry(addr).or_default();
                d.traces += v.traces;
                d.plain_traces += v.plain_traces;
                d.ect_traces += v.ect_traces;
                d.diff_a += v.diff_a;
                d.diff_b += v.diff_b;
            }
        }
    }
}

// ------------------------------------------------------------ §4.1 batches

/// Streaming accumulator behind the §4.1 batch comparison: per-batch trace
/// counts and per-server reachability histories.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchCounts {
    /// Logical traces per batch.
    pub batch_traces: [u64; 2],
    /// Sum over traces of not-ECT-reachable server counts, per batch.
    pub batch_reach_sum: [u64; 2],
    /// Per server and batch: (reachable observations, observations).
    pub per_server: BTreeMap<Ipv4Addr, [(u32, u32); 2]>,
}

impl Reduce for BatchCounts {
    fn observe_trace(&mut self, rec: &TraceRecord, ctx: &TraceCtx) {
        let b = usize::from(rec.batch.clamp(1, 2)) - 1;
        if ctx.first_chunk {
            self.batch_traces[b] += 1;
        }
        for o in &rec.outcomes {
            self.batch_reach_sum[b] += u64::from(o.udp_plain.reachable);
            let e = self.per_server.entry(o.server).or_insert([(0, 0), (0, 0)]);
            e[b].1 += 1;
            e[b].0 += u32::from(o.udp_plain.reachable);
        }
    }

    fn merge(&mut self, other: Self) {
        for b in 0..2 {
            self.batch_traces[b] += other.batch_traces[b];
            self.batch_reach_sum[b] += other.batch_reach_sum[b];
        }
        for (addr, v) in other.per_server {
            let e = self.per_server.entry(addr).or_insert([(0, 0), (0, 0)]);
            for b in 0..2 {
                e[b].0 += v[b].0;
                e[b].1 += v[b].1;
            }
        }
    }
}

// ---------------------------------------------------------------- survey

/// Streaming traceroute-survey totals (hop observation counters; the
/// hop-identity state behind Figure 4 lives in [`HopSurveyCounts`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyCounts {
    /// Paths observed per vantage key.
    pub paths_per_vantage: BTreeMap<String, u64>,
    /// Responding hop observations.
    pub hops_responded: u64,
    /// Silent hops (`*`).
    pub hops_silent: u64,
    /// Responding hops whose quotes all still carried the sent mark.
    pub hops_pass: u64,
    /// Responding hops showing a modified mark in at least one quote.
    pub hops_modified: u64,
    /// Modified hops with disagreeing probes (the "sometimes" signature).
    pub hops_mixed: u64,
    /// Paths whose ICMP port-unreachable reached back from the target.
    pub reached_destination: u64,
}

impl Reduce for SurveyCounts {
    fn observe_routes(&mut self, routes: &VantageRoutes, _ctx: &RouteCtx<'_>) {
        *self
            .paths_per_vantage
            .entry(routes.vantage_key.clone())
            .or_default() += routes.paths.len() as u64;
        for path in &routes.paths {
            self.reached_destination += u64::from(path.reached_destination);
            for hop in &path.hops {
                if hop.router.is_none() {
                    self.hops_silent += 1;
                    continue;
                }
                self.hops_responded += 1;
                if hop.modified(path.sent_ecn) {
                    self.hops_modified += 1;
                    if hop.mixed(path.sent_ecn) {
                        self.hops_mixed += 1;
                    }
                } else {
                    self.hops_pass += 1;
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, n) in other.paths_per_vantage {
            *self.paths_per_vantage.entry(key).or_default() += n;
        }
        self.hops_responded += other.hops_responded;
        self.hops_silent += other.hops_silent;
        self.hops_pass += other.hops_pass;
        self.hops_modified += other.hops_modified;
        self.hops_mixed += other.hops_mixed;
        self.reached_destination += other.reached_destination;
    }
}

// ---------------------------------------------------------------- figure 4

/// Streaming accumulator behind Figure 4 / §4.2: per-(vantage, router)
/// mark-survival state and first-modified-hop strip locations, classified
/// against the AS database at observe time. All fields merge by `|`/`+`,
/// so the result is invariant under sharding and chunking (a traceroute
/// path is always wholly contained in one observation).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSurveyCounts {
    /// (vantage index, router) → (ever passed the mark, ever modified it).
    pub hop_state: BTreeMap<(usize, Ipv4Addr), (bool, bool)>,
    /// First-modified-hop locations → (AS ever determinable, ever
    /// classified as an AS-boundary crossing).
    pub strip_locations: BTreeMap<(usize, Ipv4Addr), (bool, bool)>,
    /// CE marks observed in quotes (paper: none).
    pub ce_observed: u64,
    /// Paths answered by the destination itself.
    pub reached_destination: u64,
    /// Paths traced.
    pub paths: u64,
}

impl Reduce for HopSurveyCounts {
    fn observe_routes(&mut self, routes: &VantageRoutes, ctx: &RouteCtx<'_>) {
        for path in &routes.paths {
            self.paths += 1;
            self.reached_destination += u64::from(path.reached_destination);
            let sent = path.sent_ecn;
            let mut prev_responding: Option<Ipv4Addr> = None;
            let mut first_modified_recorded = false;
            for hop in &path.hops {
                let Some(router) = hop.router else { continue };
                let any_mod = hop.modified(sent);
                let any_pass = hop.quoted_ecn.contains(&sent);
                self.ce_observed += hop.quoted_ecn.iter().filter(|e| **e == Ecn::Ce).count() as u64;
                let e = self
                    .hop_state
                    .entry((ctx.vantage, router))
                    .or_insert((false, false));
                e.0 |= any_pass;
                e.1 |= any_mod;
                if any_mod && !first_modified_recorded {
                    first_modified_recorded = true;
                    let class = ctx.asdb.classify_hop(prev_responding, router);
                    let loc = self
                        .strip_locations
                        .entry((ctx.vantage, router))
                        .or_insert((false, false));
                    loc.0 |= class.asn().is_some();
                    loc.1 |= class.is_boundary();
                }
                prev_responding = Some(router);
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (key, (pass, modified)) in other.hop_state {
            let e = self.hop_state.entry(key).or_insert((false, false));
            e.0 |= pass;
            e.1 |= modified;
        }
        for (key, (mapped, boundary)) in other.strip_locations {
            let e = self.strip_locations.entry(key).or_insert((false, false));
            e.0 |= mapped;
            e.1 |= boundary;
        }
        self.ce_observed += other.ce_observed;
        self.reached_destination += other.reached_destination;
        self.paths += other.paths;
    }
}

// ------------------------------------------------------------- validation

/// Streaming accumulator behind the ECN-validation report section:
/// per-server counts of each [`ValidationOutcome`], indexed densely by
/// [`ValidationOutcome::index`]. Truth-free at observe time — the
/// confusion matrix against middlebox ground truth is joined at report
/// time ([`crate::analysis::validation`]), so observation stays a pure
/// function of the trace record and the merge contract holds trivially
/// (integer counters in a `BTreeMap`). Empty — and absent from the
/// report — whenever the validation pass is disabled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationCounts {
    /// server → outcome counts, indexed by `ValidationOutcome::index()`.
    pub per_server: BTreeMap<Ipv4Addr, [u64; 6]>,
    /// Total validation rounds observed (sum of every counter).
    pub rounds: u64,
}

impl ValidationCounts {
    /// No validation rounds observed (the pass was disabled)?
    pub fn is_empty(&self) -> bool {
        self.rounds == 0
    }
}

impl Reduce for ValidationCounts {
    fn observe_trace(&mut self, rec: &TraceRecord, _ctx: &TraceCtx) {
        for o in &rec.outcomes {
            if let Some(v) = o.validation {
                self.per_server.entry(o.server).or_default()[v.index()] += 1;
                self.rounds += 1;
            }
        }
    }

    fn merge(&mut self, other: Self) {
        for (addr, counts) in other.per_server {
            let e = self.per_server.entry(addr).or_default();
            for (slot, n) in e.iter_mut().zip(counts) {
                *slot += n;
            }
        }
        self.rounds += other.rounds;
    }
}

// ---------------------------------------------------------------- composite

/// The full streamed-aggregate set: everything the report path needs,
/// finalized. Each engine shard owns one instance (see [`ShardReducers`])
/// and the engine merges them; the result rides on
/// `CampaignResult::aggregates`.
///
/// Serializes (vendored-serde JSON) so a whole instance can cross a
/// process boundary: the multi-process engine mode ships each worker's
/// partial aggregate set to the parent over a pipe (see `crate::mp`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignAggregates {
    /// Table 2 counters.
    pub table2: Table2Counts,
    /// Per-vantage Figure 2/5 ratio counters.
    pub reachability: ReachabilityCounts,
    /// Per-logical-trace counters (the Figure 2/5 bars).
    pub trace_stats: TraceStats,
    /// Figure 3 per-(location, server) differential counters.
    pub differential: DifferentialCounts,
    /// §4.1 batch-comparison counters.
    pub batches: BatchCounts,
    /// Traceroute survey totals.
    pub survey: SurveyCounts,
    /// Figure 4 hop-identity state.
    pub hops: HopSurveyCounts,
    /// ECN-validation outcome counters (empty unless the pass ran).
    pub validation: ValidationCounts,
}

impl Reduce for CampaignAggregates {
    fn observe_trace(&mut self, rec: &TraceRecord, ctx: &TraceCtx) {
        self.table2.observe_trace(rec, ctx);
        self.reachability.observe_trace(rec, ctx);
        self.trace_stats.observe_trace(rec, ctx);
        self.differential.observe_trace(rec, ctx);
        self.batches.observe_trace(rec, ctx);
        self.validation.observe_trace(rec, ctx);
    }

    fn observe_routes(&mut self, routes: &VantageRoutes, ctx: &RouteCtx<'_>) {
        self.survey.observe_routes(routes, ctx);
        self.hops.observe_routes(routes, ctx);
    }

    fn merge(&mut self, other: Self) {
        self.table2.merge(other.table2);
        self.reachability.merge(other.reachability);
        self.trace_stats.merge(other.trace_stats);
        self.differential.merge(other.differential);
        self.batches.merge(other.batches);
        self.survey.merge(other.survey);
        self.hops.merge(other.hops);
        self.validation.merge(other.validation);
    }
}

/// The reducer set each engine shard owns — the same type as the merged
/// result: a shard's accumulator *is* a partial [`CampaignAggregates`].
pub type ShardReducers = CampaignAggregates;

/// Hierarchically merge partial accumulators: pairwise rounds until one
/// remains, so `n` parts take [`merge_depth`]`(n)` = ⌈log₂ n⌉ rounds
/// instead of the flat left-fold's `n − 1` sequential absorptions into
/// one ever-growing accumulator. Correctness needs nothing beyond the
/// [`Reduce`] contract — merge is commutative and associative — and the
/// tree shape keeps each round's participants of comparable size, so no
/// single merge rebalances a map that already absorbed every other part.
/// The engine uses this for its shard merge and the multi-process parent
/// for its worker-payload merge.
pub fn merge_tree<R: Reduce + Default>(mut parts: Vec<R>) -> R {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop().unwrap_or_default()
}

/// Merge rounds [`merge_tree`] performs over `n` parts: ⌈log₂ n⌉ (0 for
/// a single part or none).
pub fn merge_depth(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;
    use std::net::Ipv4Addr;

    fn outcome(i: u8, plain: bool, ect: bool, tcp: bool, neg: bool) -> ServerOutcome {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcpr = |r, n| TcpProbeResult {
            reachable: r,
            http_status: if r { Some(302) } else { None },
            requested_ecn: true,
            negotiated_ecn: n,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: Ipv4Addr::new(10, 0, 0, i),
            udp_plain: udp(plain),
            udp_ect: udp(ect),
            tcp_plain: tcpr(tcp, false),
            tcp_ecn: tcpr(tcp, neg),
            validation: None,
        }
    }

    fn rec(name: &str, outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: name.to_lowercase(),
            vantage_name: name.into(),
            batch: 2,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    #[test]
    fn table2_counts_match_batch_analysis() {
        let traces = vec![
            rec(
                "A",
                vec![
                    outcome(1, true, false, true, true),
                    outcome(2, true, false, true, false),
                    outcome(3, true, true, true, true),
                ],
            ),
            rec("B", vec![outcome(4, true, false, false, false)]),
        ];
        let mut streamed = Table2Counts::default();
        for (i, t) in traces.iter().enumerate() {
            streamed.observe_trace(t, &TraceCtx::whole(i, 0));
        }
        let batch = crate::analysis::table2(&traces);
        // per-vantage averages agree with the batch analysis
        for row in &batch.rows {
            let v = &streamed.per_vantage[&row.location];
            assert_eq!(v.udp_ect_unreachable as f64 / v.traces as f64, {
                row.avg_udp_ect_unreachable
            });
            assert_eq!(
                v.fail_tcp_ecn as f64 / v.traces as f64,
                row.avg_fail_tcp_ecn
            );
        }
        assert!((streamed.phi() - batch.phi).abs() < 1e-12);
        assert!((streamed.blocked_but_negotiates() - batch.blocked_but_negotiates).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_invariant() {
        let a = rec("A", vec![outcome(1, true, false, true, true)]);
        let b = rec("B", vec![outcome(2, true, true, true, false)]);
        let c = rec("A", vec![outcome(3, false, true, false, false)]);
        let (ka, kb, kc) = (TraceCtx::whole(0, 0), TraceCtx::whole(1, 0), {
            TraceCtx::whole(0, 1)
        });

        let mut left = ShardReducers::default();
        left.observe_trace(&a, &ka);
        left.observe_trace(&b, &kb);
        let mut right = ShardReducers::default();
        right.observe_trace(&c, &kc);
        left.merge(right);

        let mut other_order = ShardReducers::default();
        other_order.observe_trace(&c, &kc);
        let mut rest = ShardReducers::default();
        rest.observe_trace(&b, &kb);
        rest.observe_trace(&a, &ka);
        other_order.merge(rest);

        assert_eq!(left, other_order);
    }

    #[test]
    fn partial_chunks_count_one_trace() {
        let mut r = ReachabilityCounts::default();
        // one logical trace split across two chunks
        let first = TraceCtx {
            first_chunk: true,
            vantage: 0,
            trace_index: 0,
        };
        let rest = TraceCtx {
            first_chunk: false,
            ..first
        };
        r.observe_trace(&rec("A", vec![outcome(1, true, true, true, true)]), &first);
        r.observe_trace(
            &rec("A", vec![outcome(2, true, false, false, false)]),
            &rest,
        );
        let v = &r.per_vantage["a"];
        assert_eq!(v.traces, 1);
        assert_eq!(v.udp_plain, 2);
        assert_eq!(v.udp_both, 1);
    }

    #[test]
    fn trace_stats_merge_partials_into_one_bar() {
        let first = TraceCtx {
            first_chunk: true,
            vantage: 3,
            trace_index: 7,
        };
        let rest = TraceCtx {
            first_chunk: false,
            ..first
        };
        // chunk 1 observed before chunk 0 (stealing order): identity and
        // counters must come out the same
        let mut s = TraceStats::default();
        s.observe_trace(&rec("A", vec![outcome(2, true, false, true, false)]), &rest);
        s.observe_trace(&rec("A", vec![outcome(1, true, true, true, true)]), &first);
        assert_eq!(s.len(), 1);
        let t = &s.per_trace[&(3, 7)];
        assert_eq!(t.started_at, Some(Nanos::ZERO));
        assert_eq!(t.vantage_name, "A");
        assert_eq!((t.udp_plain, t.udp_ect, t.udp_both), (2, 1, 1));
        assert_eq!((t.tcp_reachable, t.tcp_negotiated), (2, 1));
    }

    #[test]
    fn tree_merge_equals_flat_fold() {
        // 7 parts (odd, forces carry legs at every round): tree merge and
        // the old left-fold must agree exactly
        let parts: Vec<ShardReducers> = (0..7u8)
            .map(|i| {
                let mut r = ShardReducers::default();
                let name = ["A", "B", "C"][usize::from(i) % 3];
                r.observe_trace(
                    &rec(
                        name,
                        vec![outcome(i + 1, i % 2 == 0, true, true, i % 3 == 0)],
                    ),
                    &TraceCtx::whole(usize::from(i), 0),
                );
                r
            })
            .collect();
        let mut flat = ShardReducers::default();
        for p in parts.clone() {
            flat.merge(p);
        }
        assert_eq!(merge_tree(parts), flat);
    }

    #[test]
    fn merge_depth_is_ceil_log2() {
        for (n, d) in [
            (0, 0),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
        ] {
            assert_eq!(merge_depth(n), d, "n = {n}");
        }
    }

    #[test]
    fn aggregates_round_trip_through_json() {
        // the multi-process wire format: a populated aggregate set must
        // survive serialize → parse bit-exactly
        let mut r = ShardReducers::default();
        r.observe_trace(
            &rec("A", vec![outcome(1, true, false, true, true)]),
            &TraceCtx::whole(0, 0),
        );
        r.observe_trace(
            &rec("B", vec![outcome(2, true, true, true, false)]),
            &TraceCtx::whole(1, 3),
        );
        let json = serde_json::to_string(&r).expect("serialize aggregates");
        let back: ShardReducers = serde_json::from_str(&json).expect("parse aggregates");
        assert_eq!(r, back);
    }

    #[test]
    fn validation_counts_observe_merge_and_round_trip() {
        use ecn_stack::ValidationOutcome;
        let with_validation = |i: u8, v: ValidationOutcome| {
            let mut o = outcome(i, true, true, true, true);
            o.validation = Some(v);
            o
        };
        let a = rec(
            "A",
            vec![
                with_validation(1, ValidationOutcome::Capable),
                with_validation(2, ValidationOutcome::FailedBleached),
                outcome(3, true, true, true, true), // pass disabled for this one
            ],
        );
        let b = rec("B", vec![with_validation(1, ValidationOutcome::Capable)]);

        let mut left = ValidationCounts::default();
        left.observe_trace(&a, &TraceCtx::whole(0, 0));
        let mut right = ValidationCounts::default();
        right.observe_trace(&b, &TraceCtx::whole(1, 0));
        left.merge(right);

        assert_eq!(left.rounds, 3);
        let s1 = left.per_server[&Ipv4Addr::new(10, 0, 0, 1)];
        assert_eq!(s1[ValidationOutcome::Capable.index()], 2);
        let s2 = left.per_server[&Ipv4Addr::new(10, 0, 0, 2)];
        assert_eq!(s2[ValidationOutcome::FailedBleached.index()], 1);
        assert!(!left.per_server.contains_key(&Ipv4Addr::new(10, 0, 0, 3)));

        // wire format round trip (the multi-process payload path)
        let json = serde_json::to_string(&left).expect("serialize");
        let back: ValidationCounts = serde_json::from_str(&json).expect("parse");
        assert_eq!(left, back);

        // disabled pass leaves the accumulator empty
        let mut empty = ValidationCounts::default();
        empty.observe_trace(&rec("A", vec![outcome(1, true, true, true, true)]), {
            &TraceCtx::whole(0, 0)
        });
        assert!(empty.is_empty());
    }

    #[test]
    fn batch_counts_split_by_batch() {
        let mut b = BatchCounts::default();
        let mut t1 = rec("A", vec![outcome(1, true, true, false, false)]);
        t1.batch = 1;
        b.observe_trace(&t1, &TraceCtx::whole(0, 0));
        b.observe_trace(
            &rec("A", vec![outcome(1, false, false, false, false)]),
            &TraceCtx::whole(0, 1),
        );
        assert_eq!(b.batch_traces, [1, 1]);
        assert_eq!(b.batch_reach_sum, [1, 0]);
        let s = b.per_server[&Ipv4Addr::new(10, 0, 0, 1)];
        assert_eq!(s, [(1, 1), (0, 1)]);
    }
}
