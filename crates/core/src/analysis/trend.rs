//! Figure 6: the historical trend of TCP servers willing to negotiate ECN,
//! 2000–2015 (§4.3). Combines the prior studies the paper plots with our
//! measured 2015 point, and fits a logistic growth curve — the paper's
//! observation is that its 82.0% sits "on a growth curve that looks to be
//! in line with previous results".

use crate::report::render_table;
use serde::{Deserialize, Serialize};

/// One measurement of ECN-negotiation willingness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Decimal year of the measurement.
    pub year: f64,
    /// Percentage of probed servers negotiating ECN.
    pub percent: f64,
    /// Study label.
    pub source: String,
}

/// Historical points as plotted in Figure 6 (values from the studies the
/// paper cites: Medina 2000/2004, Langley 2008, Bauer 2011, Kühlewind
/// 2012×2, Trammell 2014).
pub fn historical_points() -> Vec<TrendPoint> {
    let p = |year: f64, percent: f64, source: &str| TrendPoint {
        year,
        percent,
        source: source.to_string(),
    };
    vec![
        p(2000.5, 0.2, "(Medina)"),
        p(2004.3, 1.0, "(Medina)"),
        p(2008.7, 1.07, "(Langley)"),
        p(2011.5, 17.2, "(Bauer)"),
        p(2012.3, 25.16, "(Kuhlewind)"),
        p(2012.6, 29.48, "(Kuhlewind)"),
        p(2014.7, 56.17, "(Trammell)"),
    ]
}

/// A fitted logistic curve `100 / (1 + exp(-k (t - t0)))`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogisticFit {
    /// Growth rate per year.
    pub k: f64,
    /// Midpoint year (50% adoption).
    pub t0: f64,
    /// Coefficient of determination of the logit-space regression.
    pub r_squared: f64,
}

impl LogisticFit {
    /// Evaluate the curve at a decimal year.
    pub fn at(&self, year: f64) -> f64 {
        100.0 / (1.0 + (-self.k * (year - self.t0)).exp())
    }
}

/// Fit the logistic by linear regression in logit space:
/// `ln(p/(100-p)) = k·t − k·t0`.
pub fn fit_logistic(points: &[TrendPoint]) -> LogisticFit {
    let data: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.percent > 0.0 && p.percent < 100.0)
        .map(|p| (p.year, (p.percent / (100.0 - p.percent)).ln()))
        .collect();
    let n = data.len() as f64;
    let sx: f64 = data.iter().map(|(x, _)| x).sum();
    let sy: f64 = data.iter().map(|(_, y)| y).sum();
    let sxx: f64 = data.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = data.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let k = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let intercept = (sy - k * sx) / n;
    let t0 = if k.abs() < 1e-12 { 0.0 } else { -intercept / k };
    // r² in logit space
    let mean_y = sy / n;
    let ss_tot: f64 = data.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = data
        .iter()
        .map(|(x, y)| (y - (k * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LogisticFit { k, t0, r_squared }
}

/// The Figure 6 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6 {
    /// Historical points plus our measurement (last entry).
    pub points: Vec<TrendPoint>,
    /// Logistic fit over everything.
    pub fit: LogisticFit,
    /// Our measured point.
    pub measured: TrendPoint,
}

/// Build Figure 6: append our measured 2015 value and fit.
pub fn figure6(measured_percent: f64) -> Figure6 {
    let measured = TrendPoint {
        year: 2015.55, // July/August 2015 batch
        percent: measured_percent,
        source: "measured".to_string(),
    };
    let mut points = historical_points();
    points.push(measured.clone());
    let fit = fit_logistic(&points);
    Figure6 {
        points,
        fit,
        measured,
    }
}

impl Figure6 {
    /// Render the series and fit, paper-style.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}", p.year),
                    format!("{:.2}%", p.percent),
                    p.source.clone(),
                    format!("{:.2}%", self.fit.at(p.year)),
                ]
            })
            .collect();
        let mut out = render_table(
            "Figure 6: trend in TCP ECN negotiation capability",
            &["year", "negotiated", "source", "logistic fit"],
            &rows,
        );
        out.push_str(&format!(
            "\nlogistic fit: midpoint {:.1}, growth {:.2}/yr, r² = {:.3} (logit space)\n",
            self.fit.t0, self.fit.k, self.fit.r_squared,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historical_points_match_cited_studies() {
        let pts = historical_points();
        assert_eq!(pts.len(), 7);
        let trammell = pts.iter().find(|p| p.source == "(Trammell)").unwrap();
        assert!((trammell.percent - 56.17).abs() < 1e-9);
        let kuhl: Vec<_> = pts.iter().filter(|p| p.source == "(Kuhlewind)").collect();
        assert_eq!(kuhl.len(), 2);
        // strictly increasing over time
        for w in pts.windows(2) {
            assert!(w[0].year < w[1].year);
            assert!(w[0].percent <= w[1].percent);
        }
    }

    #[test]
    fn perfect_logistic_is_recovered() {
        let truth = LogisticFit {
            k: 0.5,
            t0: 2013.0,
            r_squared: 1.0,
        };
        let pts: Vec<TrendPoint> = (2005..2020)
            .map(|y| TrendPoint {
                year: y as f64,
                percent: truth.at(y as f64),
                source: "synthetic".into(),
            })
            .collect();
        let fit = fit_logistic(&pts);
        assert!((fit.k - 0.5).abs() < 1e-6, "k = {}", fit.k);
        assert!((fit.t0 - 2013.0).abs() < 1e-6, "t0 = {}", fit.t0);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn our_measurement_lies_near_the_growth_curve() {
        // The paper's point: 82.0% in 2015 is in line with prior growth
        // ("a significant increase … but on a growth curve that looks to
        // be in line with previous results"). The fit is loose — the early
        // near-zero years flatten the logit regression — so the check is
        // that the curve lands within ~25 points and below the measured
        // value (adoption accelerating).
        let f = figure6(82.0);
        let predicted = f.fit.at(2015.55);
        assert!(
            (predicted - 82.0).abs() < 25.0,
            "measured 82% vs curve {predicted:.1}%"
        );
        assert!(predicted < 82.0, "our point sits above the fitted curve");
        assert!(f.fit.r_squared > 0.9, "r² = {}", f.fit.r_squared);
        assert!(f.fit.k > 0.0, "adoption grows");
        assert!(f.fit.t0 > 2010.0 && f.fit.t0 < 2020.0);
    }

    #[test]
    fn render_lists_all_points() {
        let f = figure6(82.0);
        let r = f.render();
        assert!(r.contains("(Trammell)"));
        assert!(r.contains("measured"));
        assert!(r.contains("logistic fit"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let fit = fit_logistic(&[]);
        assert_eq!(fit.k, 0.0);
        let fit = fit_logistic(&[TrendPoint {
            year: 2000.0,
            percent: 50.0,
            source: "x".into(),
        }]);
        assert!(fit.k.is_finite());
    }
}
