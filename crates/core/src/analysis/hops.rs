//! Figure 4 and the §4.2 hop statistics: where do ECT(0) marks get
//! stripped?
//!
//! A *hop* is a (vantage, responding router address) pair. A hop is
//! **modified** if any probe's quoted ECN field differed from what was
//! sent, **sometimes-modified** if probes disagreed. The *strip location*
//! of a path is the first modified hop — classified as an AS-boundary
//! location when its AS differs from the previous responding hop's
//! (paper: 59.1% of determinable strip locations were at AS boundaries).

use crate::campaign::VantageRoutes;
use crate::reducers::{HopSurveyCounts, Reduce, RouteCtx};
use crate::report::render_table;
use ecn_asdb::AsDb;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Aggregated §4.2 statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    /// Unique (vantage, hop) pairs that responded (paper: 155439).
    pub total_hops: usize,
    /// Hops whose quotes always matched the sent mark (paper: 154421).
    pub pass_hops: usize,
    /// Hops observed with a modified mark at least once (paper: 1143).
    pub strip_hops: usize,
    /// Hops that both passed and stripped (paper: 125 "only sometimes").
    pub sometimes_hops: usize,
    /// Distinct ASes among responding hops (paper: 1400).
    pub as_count: usize,
    /// Strip locations (first modified hop per path, deduplicated per
    /// vantage).
    pub strip_locations: usize,
    /// Strip locations whose AS could be determined.
    pub located: usize,
    /// Of those, at an AS boundary (paper: 59.1%).
    pub boundary: usize,
    /// CE marks observed in quotes (paper: none).
    pub ce_observed: usize,
    /// Paths ending with an ICMP answer from the destination itself
    /// (paper: traces generally stop one hop before the destination).
    pub reached_destination: usize,
    /// Total paths traced.
    pub paths: usize,
}

impl Figure4 {
    /// Fraction of hops passing the mark unmodified (paper: ~98%... of
    /// 155439, 154421 = 99.3%; "~98% of network hops" in the abstract).
    pub fn pass_fraction(&self) -> f64 {
        if self.total_hops == 0 {
            return 1.0;
        }
        self.pass_hops as f64 / self.total_hops as f64
    }

    /// Fraction of located strip locations at AS boundaries.
    pub fn boundary_fraction(&self) -> f64 {
        if self.located == 0 {
            return 0.0;
        }
        self.boundary as f64 / self.located as f64
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                "IP-level hops observed".into(),
                self.total_hops.to_string(),
                "155439".into(),
            ],
            vec![
                "… passing ECT(0) unmodified".into(),
                self.pass_hops.to_string(),
                "154421".into(),
            ],
            vec![
                "… with mark stripped".into(),
                self.strip_hops.to_string(),
                "1143".into(),
            ],
            vec![
                "… only sometimes stripping".into(),
                self.sometimes_hops.to_string(),
                "125".into(),
            ],
            vec![
                "ASes covered".into(),
                self.as_count.to_string(),
                "1400".into(),
            ],
            vec![
                "strip locations at AS boundaries".into(),
                format!("{:.1}%", 100.0 * self.boundary_fraction()),
                "59.1%".into(),
            ],
            vec![
                "ECN-CE marks seen".into(),
                self.ce_observed.to_string(),
                "0".into(),
            ],
        ];
        let mut out = render_table(
            "Figure 4 / §4.2: ECN mark survival across network hops",
            &["metric", "measured", "paper"],
            &rows,
        );
        out.push_str(&format!(
            "pass fraction {:.2}% over {} paths ({} reached the destination)\n",
            100.0 * self.pass_fraction(),
            self.paths,
            self.reached_destination,
        ));
        out
    }
}

/// Compute the Figure 4 statistics from the traceroute survey (the legacy
/// route walk): replay the survey through the streaming reducer, then
/// finalize.
pub fn figure4(routes: &[VantageRoutes], asdb: &AsDb) -> Figure4 {
    let mut counts = HopSurveyCounts::default();
    for (vi, vr) in routes.iter().enumerate() {
        counts.observe_routes(vr, &RouteCtx { vantage: vi, asdb });
    }
    Figure4::from_counts(&counts, asdb)
}

impl Figure4 {
    /// Finalize the streamed hop-survey state — the single derivation both
    /// report paths share. Only `as_count` still needs the AS database
    /// here (a lookup over the merged hop identities); the per-path strip
    /// classification happened at observe time.
    pub fn from_counts(counts: &HopSurveyCounts, asdb: &AsDb) -> Figure4 {
        let total_hops = counts.hop_state.len();
        let strip_hops = counts.hop_state.values().filter(|(_, m)| *m).count();
        let sometimes_hops = counts.hop_state.values().filter(|(p, m)| *p && *m).count();
        let pass_hops = counts.hop_state.values().filter(|(p, _)| *p).count();
        let as_count = {
            let mut set = BTreeSet::new();
            for (_, ip) in counts.hop_state.keys() {
                if let Some(asn) = asdb.lookup(*ip) {
                    set.insert(asn);
                }
            }
            set.len()
        };
        let located = counts.strip_locations.values().filter(|(m, _)| *m).count();
        let boundary = counts
            .strip_locations
            .values()
            .filter(|(m, b)| *m && *b)
            .count();

        Figure4 {
            total_hops,
            pass_hops,
            strip_hops,
            sometimes_hops,
            as_count,
            strip_locations: counts.strip_locations.len(),
            located,
            boundary,
            ce_observed: counts.ce_observed as usize,
            reached_destination: counts.reached_destination as usize,
            paths: counts.paths as usize,
        }
    }
}

/// Export one vantage's traceroute tree as Graphviz DOT: hops in green
/// when they always passed the mark, red when they (ever) returned a
/// modified quote — the textual equivalent of the paper's radial Figure 4.
pub fn figure4_dot(vr: &VantageRoutes) -> String {
    let mut modified: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut nodes: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for path in &vr.paths {
        let sent = path.sent_ecn;
        let mut prev = format!("\"{}\"", vr.vantage_key);
        for hop in &path.hops {
            let Some(router) = hop.router else { continue };
            nodes.insert(router);
            if hop.modified(sent) {
                modified.insert(router);
            }
            let this = format!("\"{router}\"");
            edges.insert((prev.clone(), this.clone()));
            prev = this;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "// ECN traceroute map from {} — green hops pass ECT(0), red hops returned a modified mark\n",
        vr.vantage_key
    ));
    out.push_str("graph ecn_traceroute {\n  layout=twopi; ranksep=2;\n");
    out.push_str(&format!(
        "  \"{}\" [shape=box, color=blue, root=true];\n",
        vr.vantage_key
    ));
    for n in &nodes {
        let color = if modified.contains(n) { "red" } else { "green" };
        out.push_str(&format!("  \"{n}\" [shape=point, color={color}];\n"));
    }
    for (a, b) in &edges {
        out.push_str(&format!("  {a} -- {b};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceroute::{HopObservation, TraceroutePath};
    use ecn_wire::Ecn;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, b, 1)
    }

    fn hop(router: Ipv4Addr, quotes: Vec<Ecn>) -> HopObservation {
        HopObservation {
            ttl: 0,
            router: Some(router),
            quoted_ecn: quotes,
        }
    }

    fn path(dst: Ipv4Addr, hops: Vec<HopObservation>) -> TraceroutePath {
        TraceroutePath {
            dst,
            sent_ecn: Ecn::Ect0,
            hops,
            reached_destination: false,
        }
    }

    fn asdb() -> AsDb {
        let mut db = AsDb::new();
        db.insert(Ipv4Addr::new(10, 1, 0, 0), 16, 65001);
        db.insert(Ipv4Addr::new(10, 2, 0, 0), 16, 65002);
        db
    }

    #[test]
    fn clean_path_counts_only_passes() {
        let routes = vec![VantageRoutes {
            vantage_key: "v".into(),
            paths: vec![path(
                ip(9, 9),
                vec![
                    hop(ip(1, 1), vec![Ecn::Ect0; 3]),
                    hop(ip(1, 2), vec![Ecn::Ect0; 3]),
                ],
            )],
        }];
        let f = figure4(&routes, &asdb());
        assert_eq!(f.total_hops, 2);
        assert_eq!(f.pass_hops, 2);
        assert_eq!(f.strip_hops, 0);
        assert_eq!(f.strip_locations, 0);
        assert_eq!(f.ce_observed, 0);
        assert!((f.pass_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn red_run_counts_downstream_hops_and_locates_first() {
        // bleacher between hop1 (AS 65001) and hop2 (AS 65002): hops 2,3 red
        let routes = vec![VantageRoutes {
            vantage_key: "v".into(),
            paths: vec![path(
                ip(9, 9),
                vec![
                    hop(ip(1, 1), vec![Ecn::Ect0; 3]),
                    hop(ip(2, 1), vec![Ecn::NotEct; 3]),
                    hop(ip(2, 2), vec![Ecn::NotEct; 3]),
                ],
            )],
        }];
        let f = figure4(&routes, &asdb());
        assert_eq!(f.total_hops, 3);
        assert_eq!(f.strip_hops, 2, "both downstream hops show modified");
        assert_eq!(f.pass_hops, 1);
        assert_eq!(f.sometimes_hops, 0);
        assert_eq!(f.strip_locations, 1, "one first-modified location");
        assert_eq!(f.located, 1);
        assert_eq!(f.boundary, 1, "65001 -> 65002 crossing");
        assert!((f.boundary_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sometimes_strips_appear_in_both_counts() {
        let routes = vec![VantageRoutes {
            vantage_key: "v".into(),
            paths: vec![path(
                ip(9, 9),
                vec![hop(ip(1, 1), vec![Ecn::Ect0, Ecn::NotEct, Ecn::Ect0])],
            )],
        }];
        let f = figure4(&routes, &asdb());
        assert_eq!(f.total_hops, 1);
        assert_eq!(f.strip_hops, 1);
        assert_eq!(f.pass_hops, 1);
        assert_eq!(f.sometimes_hops, 1);
        // paper arithmetic: pass + strip - sometimes = total
        assert_eq!(f.pass_hops + f.strip_hops - f.sometimes_hops, f.total_hops);
    }

    #[test]
    fn same_hop_from_two_vantages_counts_twice() {
        let p = path(ip(9, 9), vec![hop(ip(1, 1), vec![Ecn::Ect0; 3])]);
        let routes = vec![
            VantageRoutes {
                vantage_key: "v1".into(),
                paths: vec![p.clone()],
            },
            VantageRoutes {
                vantage_key: "v2".into(),
                paths: vec![p],
            },
        ];
        let f = figure4(&routes, &asdb());
        assert_eq!(f.total_hops, 2, "hops are per-vantage observations");
        assert_eq!(f.as_count, 1);
    }

    #[test]
    fn interior_strip_is_not_boundary() {
        // both hops in AS 65001: strip located interior
        let routes = vec![VantageRoutes {
            vantage_key: "v".into(),
            paths: vec![path(
                ip(9, 9),
                vec![
                    hop(ip(1, 1), vec![Ecn::Ect0; 3]),
                    hop(ip(1, 2), vec![Ecn::NotEct; 3]),
                ],
            )],
        }];
        let f = figure4(&routes, &asdb());
        assert_eq!(f.located, 1);
        assert_eq!(f.boundary, 0);
    }

    #[test]
    fn dot_export_colors_nodes() {
        let routes = VantageRoutes {
            vantage_key: "v".into(),
            paths: vec![path(
                ip(9, 9),
                vec![
                    hop(ip(1, 1), vec![Ecn::Ect0; 3]),
                    hop(ip(2, 1), vec![Ecn::NotEct; 3]),
                ],
            )],
        };
        let dot = figure4_dot(&routes);
        assert!(dot.contains("\"10.1.1.1\" [shape=point, color=green]"));
        assert!(dot.contains("\"10.2.1.1\" [shape=point, color=red]"));
        assert!(dot.contains("\"v\" -- \"10.1.1.1\"") || dot.contains("\"v\" [shape=box"));
        assert!(dot.starts_with("//"));
    }
}
