//! Figure 2: per-trace UDP reachability with and without ECT(0) marks
//! (§4.1), plus the headline averages (paper: 98.97% / 99.45%).

use crate::reducers::TraceCounters;
use crate::report::{pct, render_bars};
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// One bar of Figure 2 (one trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBar {
    /// Vantage key.
    pub vantage_key: String,
    /// Vantage display name.
    pub vantage_name: String,
    /// Figure 2a: % of not-ECT-reachable also ECT(0)-reachable.
    pub pct_a: f64,
    /// Figure 2b: % of ECT(0)-reachable also not-ECT-reachable.
    pub pct_b: f64,
    /// Servers reachable with not-ECT UDP in this trace.
    pub plain_reachable: usize,
    /// Servers reachable with ECT(0) UDP in this trace.
    pub ect_reachable: usize,
}

/// The Figure 2 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2 {
    /// One bar per trace, in campaign order.
    pub bars: Vec<TraceBar>,
    /// Mean of `pct_a` over traces (paper: 98.97%).
    pub avg_a: f64,
    /// Mean of `pct_b` over traces (paper: 99.45%).
    pub avg_b: f64,
    /// Minimum `pct_a` (paper: "always above 90%").
    pub min_a: f64,
    /// Minimum `pct_b`.
    pub min_b: f64,
    /// Mean not-ECT-reachable count (paper: 2253 of 2500).
    pub avg_plain_reachable: f64,
}

/// Compute Figure 2 from the campaign traces (the legacy trace walk).
pub fn figure2(traces: &[TraceRecord]) -> Figure2 {
    Figure2::from_bars(
        traces
            .iter()
            .map(|t| TraceBar {
                vantage_key: t.vantage_key.clone(),
                vantage_name: t.vantage_name.clone(),
                pct_a: t.fig2a_pct(),
                pct_b: t.fig2b_pct(),
                plain_reachable: t.udp_plain_reachable(),
                ect_reachable: t.udp_ect_reachable(),
            })
            .collect(),
    )
}

/// Compute Figure 2 from the streamed per-trace counters, already in
/// campaign order (see [`crate::reducers::TraceStats::ordered`]) — no
/// [`TraceRecord`] needed. Bars carry the exact integer-ratio
/// percentages of the trace walk, so both paths render byte-identically.
pub fn figure2_from_counters(ordered: &[&TraceCounters]) -> Figure2 {
    let ratio = |num: u32, den: u32| {
        if den == 0 {
            100.0
        } else {
            100.0 * f64::from(num) / f64::from(den)
        }
    };
    Figure2::from_bars(
        ordered
            .iter()
            .map(|t| TraceBar {
                vantage_key: t.vantage_key.clone(),
                vantage_name: t.vantage_name.clone(),
                pct_a: ratio(t.udp_both, t.udp_plain),
                pct_b: ratio(t.udp_both, t.udp_ect),
                plain_reachable: t.udp_plain as usize,
                ect_reachable: t.udp_ect as usize,
            })
            .collect(),
    )
}

impl Figure2 {
    /// Aggregate the per-trace bars — the single derivation of the
    /// averages and minima both report paths share.
    pub fn from_bars(bars: Vec<TraceBar>) -> Figure2 {
        let n = bars.len().max(1) as f64;
        Figure2 {
            avg_a: bars.iter().map(|b| b.pct_a).sum::<f64>() / n,
            avg_b: bars.iter().map(|b| b.pct_b).sum::<f64>() / n,
            min_a: bars.iter().map(|b| b.pct_a).fold(f64::INFINITY, f64::min),
            min_b: bars.iter().map(|b| b.pct_b).fold(f64::INFINITY, f64::min),
            avg_plain_reachable: bars.iter().map(|b| b.plain_reachable as f64).sum::<f64>() / n,
            bars,
        }
    }

    /// Per-vantage mean of Figure 2a (for compact reporting).
    pub fn per_vantage_avg_a(&self) -> Vec<(String, f64)> {
        per_vantage_avg(&self.bars, |b| b.pct_a)
    }

    /// Per-vantage mean of Figure 2b.
    pub fn per_vantage_avg_b(&self) -> Vec<(String, f64)> {
        per_vantage_avg(&self.bars, |b| b.pct_b)
    }

    /// Paper-style text rendering (per-vantage bars, 90–100% scale as in
    /// the figure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_bars(
            "Figure 2a: % of servers reachable by not-ECT UDP also reachable by ECT(0) UDP (per vantage mean)",
            &self.per_vantage_avg_a(),
            90.0,
            100.0,
            40,
            "%",
        ));
        out.push('\n');
        out.push_str(&render_bars(
            "Figure 2b: % of servers reachable by ECT(0) UDP also reachable by not-ECT UDP (per vantage mean)",
            &self.per_vantage_avg_b(),
            90.0,
            100.0,
            40,
            "%",
        ));
        out.push_str(&format!(
            "\naverage 2a = {}   (paper: 98.97%)\naverage 2b = {}   (paper: 99.45%)\nmin 2a = {} (paper: always above 90%)\navg reachable via not-ECT = {:.0} (paper: 2253)\n",
            pct(self.avg_a),
            pct(self.avg_b),
            pct(self.min_a),
            self.avg_plain_reachable,
        ));
        out
    }
}

fn per_vantage_avg(bars: &[TraceBar], f: impl Fn(&TraceBar) -> f64) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, (f64, usize)> =
        std::collections::HashMap::new();
    for b in bars {
        if !sums.contains_key(&b.vantage_name) {
            order.push(b.vantage_name.clone());
        }
        let e = sums.entry(b.vantage_name.clone()).or_insert((0.0, 0));
        e.0 += f(b);
        e.1 += 1;
    }
    order
        .into_iter()
        .map(|name| {
            let (s, c) = sums[&name];
            (name, s / c as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;
    use std::net::Ipv4Addr;

    fn mk_trace(vantage: &str, pairs: &[(bool, bool)]) -> TraceRecord {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = TcpProbeResult {
            reachable: false,
            http_status: None,
            requested_ecn: false,
            negotiated_ecn: false,
            syn_ack_flags: None,
            close_reason: None,
        };
        TraceRecord {
            vantage_key: vantage.to_lowercase(),
            vantage_name: vantage.to_string(),
            batch: 1,
            started_at: Nanos::ZERO,
            outcomes: pairs
                .iter()
                .enumerate()
                .map(|(i, (p, e))| ServerOutcome {
                    server: Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                    udp_plain: udp(*p),
                    udp_ect: udp(*e),
                    tcp_plain: tcp.clone(),
                    tcp_ecn: tcp.clone(),
                    validation: None,
                })
                .collect(),
        }
    }

    #[test]
    fn averages_and_minima() {
        let t1 = mk_trace(
            "A",
            &[(true, true), (true, true), (true, false), (false, false)],
        );
        let t2 = mk_trace(
            "B",
            &[(true, true), (true, true), (true, true), (false, true)],
        );
        let f = figure2(&[t1, t2]);
        // t1: a = 2/3, b = 2/2; t2: a = 3/3, b = 3/4
        assert!((f.bars[0].pct_a - 66.6667).abs() < 0.01);
        assert!((f.bars[0].pct_b - 100.0).abs() < 1e-9);
        assert!((f.bars[1].pct_a - 100.0).abs() < 1e-9);
        assert!((f.bars[1].pct_b - 75.0).abs() < 1e-9);
        assert!((f.avg_a - (66.6667 + 100.0) / 2.0).abs() < 0.01);
        assert!((f.min_b - 75.0).abs() < 1e-9);
        assert!((f.avg_plain_reachable - 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_vantage_grouping_preserves_order() {
        let traces = vec![
            mk_trace("A", &[(true, true)]),
            mk_trace("B", &[(true, false)]),
            mk_trace("A", &[(true, true)]),
        ];
        let f = figure2(&traces);
        let pv = f.per_vantage_avg_a();
        assert_eq!(pv[0].0, "A");
        assert_eq!(pv[1].0, "B");
        assert!((pv[0].1 - 100.0).abs() < 1e-9);
        assert!((pv[1].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_paper_targets() {
        let f = figure2(&[mk_trace("A", &[(true, true)])]);
        let r = f.render();
        assert!(r.contains("98.97%"));
        assert!(r.contains("99.45%"));
        assert!(r.contains("Figure 2a"));
    }
}
