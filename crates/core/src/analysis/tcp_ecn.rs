//! Figure 5: per-trace web-server reachability over TCP and ECN
//! negotiation success (§4.3). Paper: on average 1334 of the 2500 hosts
//! answer HTTP; 1095 (82.0%) negotiate ECN when asked.

use crate::reducers::TraceCounters;
use crate::report::render_table;
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// One Figure 5 bar (one trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Bar {
    /// Vantage display name.
    pub vantage_name: String,
    /// Servers answering HTTP.
    pub tcp_reachable: usize,
    /// Servers that replied with an ECN-setup SYN-ACK.
    pub negotiated: usize,
}

/// The Figure 5 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// One bar per trace, campaign order.
    pub bars: Vec<Fig5Bar>,
    /// Mean TCP-reachable count (paper: 1334).
    pub avg_reachable: f64,
    /// Mean negotiated count (paper: 1095).
    pub avg_negotiated: f64,
}

impl Figure5 {
    /// Aggregate the per-trace bars — the single derivation both report
    /// paths share.
    pub fn from_bars(bars: Vec<Fig5Bar>) -> Figure5 {
        let n = bars.len().max(1) as f64;
        Figure5 {
            avg_reachable: bars.iter().map(|b| b.tcp_reachable as f64).sum::<f64>() / n,
            avg_negotiated: bars.iter().map(|b| b.negotiated as f64).sum::<f64>() / n,
            bars,
        }
    }

    /// Percentage of TCP-reachable servers that negotiate ECN
    /// (paper: 82.0%).
    pub fn negotiated_pct(&self) -> f64 {
        if self.avg_reachable == 0.0 {
            return 0.0;
        }
        100.0 * self.avg_negotiated / self.avg_reachable
    }

    /// Per-vantage means for compact reporting.
    pub fn per_vantage(&self) -> Vec<(String, f64, f64)> {
        let mut order = Vec::new();
        let mut acc: std::collections::HashMap<String, (f64, f64, usize)> =
            std::collections::HashMap::new();
        for b in &self.bars {
            if !acc.contains_key(&b.vantage_name) {
                order.push(b.vantage_name.clone());
            }
            let e = acc.entry(b.vantage_name.clone()).or_insert((0.0, 0.0, 0));
            e.0 += b.tcp_reachable as f64;
            e.1 += b.negotiated as f64;
            e.2 += 1;
        }
        order
            .into_iter()
            .map(|name| {
                let (r, n, c) = acc[&name];
                (name, r / c as f64, n / c as f64)
            })
            .collect()
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .per_vantage()
            .into_iter()
            .map(|(name, r, n)| {
                vec![
                    name,
                    format!("{r:.0}"),
                    format!("{n:.0}"),
                    format!("{:.1}%", if r > 0.0 { 100.0 * n / r } else { 0.0 }),
                ]
            })
            .collect();
        let mut out = render_table(
            "Figure 5: web servers reachable via TCP and negotiating ECN (per vantage mean)",
            &["Location", "TCP reachable", "negotiate ECN", "share"],
            &rows,
        );
        out.push_str(&format!(
            "\navg reachable = {:.0} (paper: 1334), avg negotiating = {:.0} (paper: 1095), share = {:.1}% (paper: 82.0%)\n",
            self.avg_reachable,
            self.avg_negotiated,
            self.negotiated_pct(),
        ));
        out
    }
}

/// Compute Figure 5 from campaign traces (the legacy trace walk).
pub fn figure5(traces: &[TraceRecord]) -> Figure5 {
    Figure5::from_bars(
        traces
            .iter()
            .map(|t| Fig5Bar {
                vantage_name: t.vantage_name.clone(),
                tcp_reachable: t.tcp_reachable(),
                negotiated: t.tcp_ecn_negotiated(),
            })
            .collect(),
    )
}

/// Compute Figure 5 from the streamed per-trace counters, already in
/// campaign order (see [`crate::reducers::TraceStats::ordered`]) — no
/// [`TraceRecord`] needed.
pub fn figure5_from_counters(ordered: &[&TraceCounters]) -> Figure5 {
    Figure5::from_bars(
        ordered
            .iter()
            .map(|t| Fig5Bar {
                vantage_name: t.vantage_name.clone(),
                tcp_reachable: t.tcp_reachable as usize,
                negotiated: t.tcp_negotiated as usize,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;
    use std::net::Ipv4Addr;

    fn outcome(reach: bool, negotiate: bool) -> ServerOutcome {
        let udp = UdpProbeResult {
            reachable: false,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = |r, n| TcpProbeResult {
            reachable: r,
            http_status: if r { Some(302) } else { None },
            requested_ecn: true,
            negotiated_ecn: n,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: Ipv4Addr::new(1, 1, 1, 1),
            udp_plain: udp,
            udp_ect: udp,
            tcp_plain: tcp(reach, false),
            tcp_ecn: tcp(reach, negotiate),
            validation: None,
        }
    }

    fn trace(name: &str, outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: name.to_lowercase(),
            vantage_name: name.into(),
            batch: 2,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    #[test]
    fn counts_and_share() {
        let t1 = trace(
            "A",
            vec![
                outcome(true, true),
                outcome(true, false),
                outcome(false, false),
            ],
        );
        let t2 = trace("A", vec![outcome(true, true), outcome(true, true)]);
        let f = figure5(&[t1, t2]);
        assert_eq!(f.bars[0].tcp_reachable, 2);
        assert_eq!(f.bars[0].negotiated, 1);
        assert_eq!(f.bars[1].negotiated, 2);
        assert!((f.avg_reachable - 2.0).abs() < 1e-9);
        assert!((f.avg_negotiated - 1.5).abs() < 1e-9);
        assert!((f.negotiated_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn per_vantage_means() {
        let traces = vec![
            trace("A", vec![outcome(true, true)]),
            trace("B", vec![outcome(true, false)]),
            trace("A", vec![outcome(true, true), outcome(true, true)]),
        ];
        let f = figure5(&traces);
        let pv = f.per_vantage();
        assert_eq!(pv[0].0, "A");
        assert!((pv[0].1 - 1.5).abs() < 1e-9);
        assert!((pv[1].2 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn render_cites_paper() {
        let f = figure5(&[trace("A", vec![outcome(true, true)])]);
        let r = f.render();
        assert!(r.contains("1334"));
        assert!(r.contains("82.0%"));
    }
}
