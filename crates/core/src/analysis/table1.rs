//! Table 1 / Figure 1: geographic distribution of the discovered servers.

use crate::report::render_table;
use ecn_geo::{GeoDb, Region, TABLE1_DISTRIBUTION};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The Table 1 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Measured (region, count) over the discovered targets.
    pub rows: Vec<(Region, usize)>,
    /// Total discovered.
    pub total: usize,
}

/// Compute Table 1 from the discovered target list.
pub fn table1(geodb: &GeoDb, targets: &[Ipv4Addr]) -> Table1 {
    Table1 {
        rows: geodb.distribution(targets),
        total: targets.len(),
    }
}

impl Table1 {
    /// Count for one region.
    pub fn count(&self, region: Region) -> usize {
        self.rows
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Paper-style text rendering with the paper's column alongside.
    pub fn render(&self) -> String {
        let paper: std::collections::HashMap<Region, usize> =
            TABLE1_DISTRIBUTION.iter().copied().collect();
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(region, count)| {
                vec![
                    region.to_string(),
                    count.to_string(),
                    paper.get(region).copied().unwrap_or(0).to_string(),
                ]
            })
            .collect();
        rows.push(vec![
            "Total".into(),
            self.total.to_string(),
            ecn_geo::TABLE1_TOTAL.to_string(),
        ]);
        render_table(
            "Table 1: geographic distribution of NTP pool servers",
            &["Region", "measured", "paper"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_geo::GeoRecord;

    #[test]
    fn distribution_counts_and_unknown() {
        let mut db = GeoDb::new();
        let a = Ipv4Addr::new(1, 0, 0, 1);
        let b = Ipv4Addr::new(1, 0, 0, 2);
        db.insert(
            a,
            GeoRecord {
                region: Region::Europe,
                country: "uk".into(),
                lat: 0.0,
                lon: 0.0,
            },
        );
        let t = table1(&db, &[a, b]);
        assert_eq!(t.count(Region::Europe), 1);
        assert_eq!(t.count(Region::Unknown), 1);
        assert_eq!(t.total, 2);
        let r = t.render();
        assert!(r.contains("Europe"));
        assert!(r.contains("1664"), "paper column present");
        assert!(r.contains("Total"));
    }
}
