//! Table 2: correlation between UDP-with-ECT unreachability and TCP ECN
//! negotiation failure (§4.4). The paper's finding is a *weak* correlation:
//! most servers that blackhole ECT-marked UDP still negotiate ECN fine
//! over TCP — evidence of UDP-specific ECT filtering.

use crate::reducers::{Reduce, Table2Counts, TraceCtx};
use crate::report::render_table;
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// One Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Location (vantage) name.
    pub location: String,
    /// Avg per trace: servers reachable via not-ECT UDP but not ECT(0).
    pub avg_udp_ect_unreachable: f64,
    /// Avg per trace: of those, TCP-reachable servers that failed to
    /// negotiate ECN.
    pub avg_fail_tcp_ecn: f64,
    /// Avg per trace: of those, TCP-reachable servers that *did* negotiate.
    pub avg_ok_tcp_ecn: f64,
    /// Traces from this location.
    pub traces: usize,
}

/// The Table 2 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in vantage first-seen order.
    pub rows: Vec<Table2Row>,
    /// φ (phi) correlation between the events "UDP-ECT unreachable" and
    /// "refuses TCP ECN", across all (server, trace) observations where
    /// the server was TCP-reachable and UDP-plain-reachable.
    pub phi: f64,
    /// Fraction of UDP-ECT-unreachable, TCP-reachable server observations
    /// that nevertheless negotiated ECN over TCP (the "majority" claim).
    pub blocked_but_negotiates: f64,
}

/// Compute Table 2 from campaign traces (the legacy trace walk): replay
/// the records through the streaming reducer, then finalize.
pub fn table2(traces: &[TraceRecord]) -> Table2 {
    let mut order: Vec<String> = Vec::new();
    let mut counts = Table2Counts::default();
    for (i, t) in traces.iter().enumerate() {
        if !order.contains(&t.vantage_name) {
            order.push(t.vantage_name.clone());
        }
        counts.observe_trace(t, &TraceCtx::whole(0, i));
    }
    Table2::from_counts(&counts, &order)
}

impl Table2 {
    /// Finalize the streamed Table 2 counters, with rows in `order`
    /// (first-seen campaign order). Averages and φ are exact integer
    /// ratios, so both report paths produce identical floats.
    pub fn from_counts(counts: &Table2Counts, order: &[String]) -> Table2 {
        let rows: Vec<Table2Row> = order
            .iter()
            .filter_map(|name| {
                let v = counts.per_vantage.get(name)?;
                Some(Table2Row {
                    location: name.clone(),
                    avg_udp_ect_unreachable: v.udp_ect_unreachable as f64 / v.traces as f64,
                    avg_fail_tcp_ecn: v.fail_tcp_ecn as f64 / v.traces as f64,
                    avg_ok_tcp_ecn: v.ok_tcp_ecn as f64 / v.traces as f64,
                    traces: v.traces as usize,
                })
            })
            .collect();
        Table2 {
            rows,
            phi: counts.phi(),
            blocked_but_negotiates: counts.blocked_but_negotiates(),
        }
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.location.clone(),
                    format!("{:.0}", r.avg_udp_ect_unreachable),
                    format!("{:.0}", r.avg_fail_tcp_ecn),
                ]
            })
            .collect();
        let mut out = render_table(
            "Table 2: correlation between UDP and TCP reachability",
            &[
                "Location",
                "Avg. unreachable UDP w/ECT",
                "…of those, fail to negotiate ECN w/TCP",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nφ correlation = {:.3} (weak); {:.0}% of ECT-UDP-blocked, TCP-reachable servers still negotiate ECN over TCP\n",
            self.phi,
            100.0 * self.blocked_but_negotiates,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;
    use std::net::Ipv4Addr;

    fn outcome(i: u8, plain: bool, ect: bool, tcp_reach: bool, negotiated: bool) -> ServerOutcome {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = |r, n| TcpProbeResult {
            reachable: r,
            http_status: if r { Some(302) } else { None },
            requested_ecn: true,
            negotiated_ecn: n,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: Ipv4Addr::new(10, 0, 0, i),
            udp_plain: udp(plain),
            udp_ect: udp(ect),
            tcp_plain: tcp(tcp_reach, false),
            tcp_ecn: tcp(tcp_reach, negotiated),
            validation: None,
        }
    }

    fn trace(name: &str, outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: name.to_lowercase(),
            vantage_name: name.into(),
            batch: 2,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    #[test]
    fn rows_count_blocked_and_refusing() {
        let t = trace(
            "A",
            vec![
                // blocked on UDP but negotiates TCP ECN: the paper's case
                outcome(1, true, false, true, true),
                // blocked on UDP and refuses TCP ECN
                outcome(2, true, false, true, false),
                // blocked on UDP, no web server
                outcome(3, true, false, false, false),
                // healthy everywhere
                outcome(4, true, true, true, true),
            ],
        );
        let t2 = table2(&[t]);
        assert_eq!(t2.rows.len(), 1);
        let r = &t2.rows[0];
        assert!((r.avg_udp_ect_unreachable - 3.0).abs() < 1e-9);
        assert!(
            (r.avg_fail_tcp_ecn - 1.0).abs() < 1e-9,
            "only the TCP-reachable refuser"
        );
        assert!((r.avg_ok_tcp_ecn - 1.0).abs() < 1e-9);
        assert!((t2.blocked_but_negotiates - 0.5).abs() < 1e-9);
    }

    #[test]
    fn independent_events_have_low_phi() {
        // blocked/unblocked × negotiate/refuse occur independently
        let mut outcomes = Vec::new();
        let mut i = 0u8;
        for _ in 0..10 {
            for (diff, neg) in [(true, true), (true, false), (false, true), (false, false)] {
                i = i.wrapping_add(1);
                outcomes.push(outcome(i, true, !diff, true, neg));
            }
        }
        let t2 = table2(&[trace("A", outcomes)]);
        assert!(t2.phi.abs() < 0.05, "phi = {}", t2.phi);
    }

    #[test]
    fn perfectly_correlated_events_have_phi_one() {
        let outcomes = vec![
            outcome(1, true, false, true, false),
            outcome(2, true, false, true, false),
            outcome(3, true, true, true, true),
            outcome(4, true, true, true, true),
        ];
        let t2 = table2(&[trace("A", outcomes)]);
        assert!((t2.phi - 1.0).abs() < 1e-9, "phi = {}", t2.phi);
    }

    #[test]
    fn render_matches_table2_shape() {
        let t2 = table2(&[trace(
            "Perkins home",
            vec![outcome(1, true, true, true, true)],
        )]);
        let r = t2.render();
        assert!(r.contains("Perkins home"));
        assert!(r.contains("Avg. unreachable UDP w/ECT"));
    }
}
