//! Figure 3: per-server differential reachability, per vantage location
//! (§4.1). A server's 3a-differential at a location is the fraction of that
//! location's traces in which it answered not-ECT probes but not ECT(0)
//! probes; 3b is the converse. The paper's key observations: 9–14 servers
//! per location above 50% in 3a (the same set everywhere ⇒ drops near the
//! destination), at most 3 in 3b.

use crate::reducers::{DifferentialCounts, Reduce, TraceCtx};
use crate::report::render_table;
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Differential reachability of one server from one location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerDifferential {
    /// Traces (from this location) where the server answered not-ECT.
    pub plain_traces: u32,
    /// Traces where it answered ECT(0).
    pub ect_traces: u32,
    /// Traces with the 3a event (plain yes, ECT no).
    pub diff_a: u32,
    /// Traces with the 3b event (ECT yes, plain no).
    pub diff_b: u32,
    /// Traces observed in total.
    pub traces: u32,
}

impl ServerDifferential {
    /// Fraction of traces with the 3a event.
    pub fn frac_a(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.diff_a as f64 / self.traces as f64
        }
    }

    /// Fraction of traces with the 3b event.
    pub fn frac_b(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.diff_b as f64 / self.traces as f64
        }
    }
}

/// The Figure 3 dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure3 {
    /// (location → server → differential) in location first-seen order.
    pub per_location: Vec<(String, BTreeMap<Ipv4Addr, ServerDifferential>)>,
    /// Per-location count of servers with 3a differential > 50%
    /// (paper: between 9 and 14).
    pub high_diff_a: Vec<(String, usize)>,
    /// Per-location count of servers with 3b differential > 50%
    /// (paper: at most 3).
    pub high_diff_b: Vec<(String, usize)>,
    /// Servers above 50% 3a differential from *every* location — the
    /// near-destination blackholes.
    pub persistent_a: Vec<Ipv4Addr>,
    /// Servers above 50% 3b differential somewhere.
    pub persistent_b: Vec<Ipv4Addr>,
}

/// Compute Figure 3 from campaign traces (the legacy trace walk): replay
/// the records through the streaming reducer, then finalize.
pub fn figure3(traces: &[TraceRecord]) -> Figure3 {
    let mut order: Vec<String> = Vec::new();
    let mut counts = DifferentialCounts::default();
    for (i, t) in traces.iter().enumerate() {
        if !order.contains(&t.vantage_name) {
            order.push(t.vantage_name.clone());
        }
        counts.observe_trace(t, &TraceCtx::whole(0, i));
    }
    Figure3::from_counts(counts, &order)
}

impl Figure3 {
    /// Finalize the streamed per-(location, server) counters into the
    /// Figure 3 dataset, with locations in `order` (first-seen campaign
    /// order). The single derivation both report paths share. Takes the
    /// counts by value so the server maps move into the figure instead of
    /// being deep-copied.
    pub fn from_counts(mut counts: DifferentialCounts, order: &[String]) -> Figure3 {
        let per_location: Vec<(String, BTreeMap<Ipv4Addr, ServerDifferential>)> = order
            .iter()
            .map(|name| {
                (
                    name.clone(),
                    counts.per_location.remove(name).unwrap_or_default(),
                )
            })
            .collect();

        let high = |f: &dyn Fn(&ServerDifferential) -> f64| -> Vec<(String, usize)> {
            per_location
                .iter()
                .map(|(name, servers)| {
                    (
                        name.clone(),
                        servers.values().filter(|d| f(d) > 0.5).count(),
                    )
                })
                .collect()
        };
        let high_diff_a = high(&|d: &ServerDifferential| d.frac_a());
        let high_diff_b = high(&|d: &ServerDifferential| d.frac_b());

        // servers >50% 3a from EVERY location
        let mut persistent_a: Vec<Ipv4Addr> = Vec::new();
        if let Some((_, first)) = per_location.first() {
            'server: for (&addr, _) in first.iter() {
                for (_, servers) in &per_location {
                    match servers.get(&addr) {
                        Some(d) if d.frac_a() > 0.5 => {}
                        _ => continue 'server,
                    }
                }
                persistent_a.push(addr);
            }
        }
        let mut persistent_b: Vec<Ipv4Addr> = Vec::new();
        for (_, servers) in &per_location {
            for (&addr, d) in servers {
                if d.frac_b() > 0.5 && !persistent_b.contains(&addr) {
                    persistent_b.push(addr);
                }
            }
        }
        persistent_b.sort();

        Figure3 {
            per_location,
            high_diff_a,
            high_diff_b,
            persistent_a,
            persistent_b,
        }
    }

    /// Range of the per-location >50% 3a counts (paper: 9–14).
    pub fn high_a_range(&self) -> (usize, usize) {
        let min = self.high_diff_a.iter().map(|(_, c)| *c).min().unwrap_or(0);
        let max = self.high_diff_a.iter().map(|(_, c)| *c).max().unwrap_or(0);
        (min, max)
    }

    /// Maximum per-location >50% 3b count (paper: ≤ 3).
    pub fn high_b_max(&self) -> usize {
        self.high_diff_b.iter().map(|(_, c)| *c).max().unwrap_or(0)
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .high_diff_a
            .iter()
            .zip(&self.high_diff_b)
            .map(|((name, a), (_, b))| vec![name.clone(), a.to_string(), b.to_string()])
            .collect();
        let mut out = render_table(
            "Figure 3: servers with >50% differential reachability, per location",
            &["Location", ">50% 3a (plain-only)", ">50% 3b (ECT-only)"],
            &rows,
        );
        let (lo, hi) = self.high_a_range();
        out.push_str(&format!(
            "\n3a range {lo}..{hi} (paper: 9..14); persistent from every location: {} servers\n3b max {} (paper: at most 3)\n",
            self.persistent_a.len(),
            self.high_b_max(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;

    fn mk_trace(vantage: &str, outcomes: Vec<(Ipv4Addr, bool, bool)>) -> TraceRecord {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = TcpProbeResult {
            reachable: false,
            http_status: None,
            requested_ecn: false,
            negotiated_ecn: false,
            syn_ack_flags: None,
            close_reason: None,
        };
        TraceRecord {
            vantage_key: vantage.to_lowercase(),
            vantage_name: vantage.to_string(),
            batch: 1,
            started_at: Nanos::ZERO,
            outcomes: outcomes
                .into_iter()
                .map(|(addr, p, e)| ServerOutcome {
                    server: addr,
                    udp_plain: udp(p),
                    udp_ect: udp(e),
                    tcp_plain: tcp.clone(),
                    tcp_ecn: tcp.clone(),
                    validation: None,
                })
                .collect(),
        }
    }

    const S1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn blocked_server_is_high_differential_everywhere() {
        // S1 always plain-only (blocked); S2 healthy.
        let traces = vec![
            mk_trace("A", vec![(S1, true, false), (S2, true, true)]),
            mk_trace("A", vec![(S1, true, false), (S2, true, true)]),
            mk_trace("B", vec![(S1, true, false), (S2, true, true)]),
        ];
        let f = figure3(&traces);
        assert_eq!(
            f.high_diff_a,
            vec![("A".to_string(), 1), ("B".to_string(), 1)]
        );
        assert_eq!(f.persistent_a, vec![S1]);
        assert_eq!(f.high_b_max(), 0);
        assert_eq!(f.high_a_range(), (1, 1));
    }

    #[test]
    fn transient_noise_stays_below_threshold() {
        // S2 fails ECT once in four traces: 25% differential, not high.
        let traces = vec![
            mk_trace("A", vec![(S2, true, false)]),
            mk_trace("A", vec![(S2, true, true)]),
            mk_trace("A", vec![(S2, true, true)]),
            mk_trace("A", vec![(S2, true, true)]),
        ];
        let f = figure3(&traces);
        assert_eq!(f.high_diff_a[0].1, 0);
        let d = f.per_location[0].1[&S2];
        assert!((d.frac_a() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ect_only_server_shows_in_3b() {
        let traces = vec![
            mk_trace("A", vec![(S1, false, true)]),
            mk_trace("A", vec![(S1, false, true)]),
        ];
        let f = figure3(&traces);
        assert_eq!(f.high_diff_b[0].1, 1);
        assert_eq!(f.persistent_b, vec![S1]);
        assert_eq!(f.high_a_range(), (0, 0));
    }

    #[test]
    fn render_contains_paper_reference_values() {
        let f = figure3(&[mk_trace("A", vec![(S1, true, true)])]);
        let r = f.render();
        assert!(r.contains("9..14"));
        assert!(r.contains("at most 3"));
    }
}
