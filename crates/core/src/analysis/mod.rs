//! The analysis suite: one module per paper artefact, plus a
//! [`FullReport`] aggregator that computes everything from a
//! [`crate::campaign::CampaignResult`].

pub mod batches;
pub mod correlation;
pub mod differential;
pub mod hops;
pub mod reachability;
pub mod table1;
pub mod tcp_ecn;
pub mod trend;
pub mod validation;

pub use batches::{batch_comparison, BatchComparison};
pub use correlation::{table2, Table2, Table2Row};
pub use differential::{figure3, Figure3, ServerDifferential};
pub use hops::{figure4, figure4_dot, Figure4};
pub use reachability::{figure2, figure2_from_counters, Figure2, TraceBar};
pub use table1::{table1, Table1};
pub use tcp_ecn::{figure5, figure5_from_counters, Fig5Bar, Figure5};
pub use trend::{figure6, fit_logistic, historical_points, Figure6, LogisticFit, TrendPoint};
pub use validation::{validation_report, TruthClass, ValidationReport};

use crate::campaign::CampaignResult;

/// Every table and figure computed from one campaign.
pub struct FullReport {
    /// Table 1: server geography.
    pub table1: Table1,
    /// Figure 2: UDP reachability ±ECT(0).
    pub figure2: Figure2,
    /// Figure 3: per-server differential reachability.
    pub figure3: Figure3,
    /// Figure 4 / §4.2: hop-level mark survival.
    pub figure4: Figure4,
    /// Figure 5: TCP reachability and ECN negotiation.
    pub figure5: Figure5,
    /// Figure 6: historical trend with our point appended.
    pub figure6: Figure6,
    /// Table 2: UDP/TCP correlation.
    pub table2: Table2,
    /// §4.1 batch comparison (churn between collection periods).
    pub batches: BatchComparison,
    /// ECN-validation confusion matrix — `None` unless the modern-ECN
    /// validation pass ran (`ValidationConfig::packets > 0`), so
    /// pre-validator campaigns render byte-identically.
    pub validation: Option<ValidationReport>,
}

impl FullReport {
    /// Compute everything. Delegates to [`Self::from_aggregates`]: the
    /// streamed aggregates are the single source of truth for the report
    /// path, so this works on reducer-only runs
    /// (`EngineConfig::keep_traces = false`, the default) with no raw
    /// traces at all.
    pub fn from_campaign(result: &CampaignResult) -> FullReport {
        FullReport::from_aggregates(result)
    }

    /// Compute everything from the streamed aggregates — O(aggregates)
    /// memory, no `TraceRecord` or per-trace walk involved. Renders
    /// byte-identically to [`Self::from_traces`]
    /// (`crates/core/tests/report_differential.rs` is the gate).
    ///
    /// ```
    /// use ecn_core::{run_campaign, CampaignConfig, FullReport};
    /// use ecn_pool::PoolPlan;
    ///
    /// let cfg = CampaignConfig {
    ///     discovery_rounds: 10,
    ///     traces_per_vantage: Some(1),
    ///     run_traceroute: false,
    ///     ..CampaignConfig::quick(2015)
    /// };
    /// let result = run_campaign(&PoolPlan::scaled(24), &cfg);
    /// let report = FullReport::from_aggregates(&result);
    /// let text = report.render();
    /// for artefact in ["Table 1", "Figure 2a", "Figure 3", "Figure 5", "Table 2"] {
    ///     assert!(text.contains(artefact), "missing {artefact}");
    /// }
    /// ```
    pub fn from_aggregates(result: &CampaignResult) -> FullReport {
        let a = &result.aggregates;
        // campaign order is sorted out once; every per-trace artefact
        // derives from the same sequence
        let ordered = a.trace_stats.ordered();
        let order = crate::reducers::location_order_of(&ordered);
        let figure5 = figure5_from_counters(&ordered);
        let measured_pct = figure5.negotiated_pct();
        FullReport {
            table1: table1(&result.geodb, &result.targets),
            figure2: figure2_from_counters(&ordered),
            figure3: Figure3::from_counts(a.differential.clone(), &order),
            figure4: Figure4::from_counts(&a.hops, &result.asdb),
            figure5,
            figure6: figure6(measured_pct),
            table2: Table2::from_counts(&a.table2, &order),
            batches: BatchComparison::from_counts(&a.batches),
            validation: ValidationReport::from_counts(&a.validation, &result.truth),
        }
    }

    /// Compute everything by walking the raw trace/route vectors — the
    /// legacy derivation, kept as the cross-check for the differential
    /// suite and for per-trace consumers that already opted into
    /// `EngineConfig::keep_traces`. Panics if the campaign ran
    /// reducer-only (there is nothing to walk).
    pub fn from_traces(result: &CampaignResult) -> FullReport {
        assert!(
            !result.traces.is_empty() || result.aggregates.trace_stats.is_empty(),
            "FullReport::from_traces needs raw traces; this campaign ran \
             with keep_traces = false — use from_aggregates (or from_campaign)"
        );
        assert!(
            !result.routes.is_empty() || result.aggregates.hops.paths == 0,
            "FullReport::from_traces needs raw traceroute paths; this \
             campaign ran with keep_routes = false — use from_aggregates"
        );
        let figure5 = figure5(&result.traces);
        let measured_pct = figure5.negotiated_pct();
        FullReport {
            table1: table1(&result.geodb, &result.targets),
            figure2: figure2(&result.traces),
            figure3: figure3(&result.traces),
            figure4: figure4(&result.routes, &result.asdb),
            figure5,
            figure6: figure6(measured_pct),
            table2: table2(&result.traces),
            batches: batch_comparison(&result.traces),
            validation: validation_report(&result.traces, &result.truth),
        }
    }

    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.table1.render());
        out.push('\n');
        out.push_str(&self.figure2.render());
        out.push('\n');
        out.push_str(&self.figure3.render());
        out.push('\n');
        out.push_str(&self.figure4.render());
        out.push('\n');
        out.push_str(&self.figure5.render());
        out.push('\n');
        out.push_str(&self.figure6.render());
        out.push('\n');
        out.push_str(&self.table2.render());
        out.push('\n');
        out.push_str(&self.batches.render());
        if let Some(v) = &self.validation {
            out.push('\n');
            out.push_str(&v.render());
        }
        out
    }
}
