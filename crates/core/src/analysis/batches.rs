//! Batch comparison (§4.1): the paper's early traces (April/May 2015)
//! show higher reachability than the later ones (July/August), attributed
//! to "servers leaving the NTP pool between the two sets of measurements".
//! This analysis quantifies that from the traces and identifies the
//! churned servers — reachable in a majority of batch-1 traces, gone in
//! batch 2.

use crate::reducers::{BatchCounts, Reduce, TraceCtx};
use crate::report::render_table;
use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Per-batch aggregates plus the churn inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchComparison {
    /// Traces in batch 1 (April/May).
    pub batch1_traces: usize,
    /// Traces in batch 2 (July/August).
    pub batch2_traces: usize,
    /// Mean servers reachable via not-ECT UDP, batch 1.
    pub batch1_avg_reachable: f64,
    /// Mean servers reachable via not-ECT UDP, batch 2.
    pub batch2_avg_reachable: f64,
    /// Servers reachable in >50 % of batch-1 traces but <10 % of batch-2
    /// traces — the inferred pool leavers.
    pub churned: Vec<Ipv4Addr>,
    /// Servers unreachable in every trace of both batches (dead targets).
    pub never_reachable: usize,
}

/// Compare the two collection batches (the legacy trace walk): replay the
/// records through the streaming reducer, then finalize.
pub fn batch_comparison(traces: &[TraceRecord]) -> BatchComparison {
    let mut counts = BatchCounts::default();
    for (i, t) in traces.iter().enumerate() {
        counts.observe_trace(t, &TraceCtx::whole(0, i));
    }
    BatchComparison::from_counts(&counts)
}

impl BatchComparison {
    /// Finalize the streamed batch counters — the single derivation both
    /// report paths share.
    pub fn from_counts(counts: &BatchCounts) -> BatchComparison {
        let frac = |(hits, total): (u32, u32)| {
            if total == 0 {
                f64::NAN
            } else {
                f64::from(hits) / f64::from(total)
            }
        };
        let mut churned = Vec::new();
        let mut never = 0usize;
        for (addr, c) in &counts.per_server {
            let f1 = frac(c[0]);
            let f2 = frac(c[1]);
            if c[0].0 == 0 && c[1].0 == 0 {
                never += 1;
                continue;
            }
            if f1.is_finite() && f2.is_finite() && f1 > 0.5 && f2 < 0.1 {
                churned.push(*addr);
            }
        }
        let avg = |b: usize| {
            if counts.batch_traces[b] == 0 {
                0.0
            } else {
                counts.batch_reach_sum[b] as f64 / counts.batch_traces[b] as f64
            }
        };
        BatchComparison {
            batch1_traces: counts.batch_traces[0] as usize,
            batch2_traces: counts.batch_traces[1] as usize,
            batch1_avg_reachable: avg(0),
            batch2_avg_reachable: avg(1),
            churned,
            never_reachable: never,
        }
    }

    /// Drop in mean reachability from batch 1 to batch 2.
    pub fn reachability_drop(&self) -> f64 {
        self.batch1_avg_reachable - self.batch2_avg_reachable
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                "April/May (batch 1)".into(),
                self.batch1_traces.to_string(),
                format!("{:.0}", self.batch1_avg_reachable),
            ],
            vec![
                "July/August (batch 2)".into(),
                self.batch2_traces.to_string(),
                format!("{:.0}", self.batch2_avg_reachable),
            ],
        ];
        let mut out = render_table(
            "§4.1 batch comparison: reachability across the two collection periods",
            &["batch", "traces", "avg reachable (not-ECT UDP)"],
            &rows,
        );
        out.push_str(&format!(
            "\ninferred pool leavers (up in batch 1, gone in batch 2): {}\nnever-reachable targets: {}\n(paper: \"the early traces … show higher reachability than the later traces … due to servers leaving the NTP pool\")\n",
            self.churned.len(),
            self.never_reachable,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;

    fn outcome(i: u8, reachable: bool) -> ServerOutcome {
        let udp = |r| UdpProbeResult {
            reachable: r,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = TcpProbeResult {
            reachable: false,
            http_status: None,
            requested_ecn: false,
            negotiated_ecn: false,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: Ipv4Addr::new(10, 0, 0, i),
            udp_plain: udp(reachable),
            udp_ect: udp(reachable),
            tcp_plain: tcp.clone(),
            tcp_ecn: tcp,
            validation: None,
        }
    }

    fn trace(batch: u8, reach: &[bool]) -> TraceRecord {
        TraceRecord {
            vantage_key: "v".into(),
            vantage_name: "V".into(),
            batch,
            started_at: Nanos::ZERO,
            outcomes: reach
                .iter()
                .enumerate()
                .map(|(i, r)| outcome(i as u8, *r))
                .collect(),
        }
    }

    #[test]
    fn churned_server_is_identified() {
        // server 0: up in batch 1, gone in batch 2. server 1: always up.
        // server 2: never up.
        let traces = vec![
            trace(1, &[true, true, false]),
            trace(1, &[true, true, false]),
            trace(2, &[false, true, false]),
            trace(2, &[false, true, false]),
        ];
        let b = batch_comparison(&traces);
        assert_eq!(b.batch1_traces, 2);
        assert_eq!(b.batch2_traces, 2);
        assert!((b.batch1_avg_reachable - 2.0).abs() < 1e-9);
        assert!((b.batch2_avg_reachable - 1.0).abs() < 1e-9);
        assert_eq!(b.churned, vec![Ipv4Addr::new(10, 0, 0, 0)]);
        assert_eq!(b.never_reachable, 1);
        assert!((b.reachability_drop() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flaky_server_is_not_churn() {
        // reachable half the time in both batches: not a leaver
        let traces = vec![
            trace(1, &[true]),
            trace(1, &[false]),
            trace(2, &[true]),
            trace(2, &[false]),
        ];
        let b = batch_comparison(&traces);
        assert!(b.churned.is_empty());
        assert_eq!(b.never_reachable, 0);
    }

    #[test]
    fn single_batch_input_is_handled() {
        let traces = vec![trace(2, &[true, false])];
        let b = batch_comparison(&traces);
        assert_eq!(b.batch1_traces, 0);
        assert_eq!(b.batch1_avg_reachable, 0.0);
        assert!(b.churned.is_empty(), "no batch-1 baseline, no churn claims");
    }

    #[test]
    fn render_mentions_the_papers_explanation() {
        let b = batch_comparison(&[trace(1, &[true]), trace(2, &[true])]);
        let r = b.render();
        assert!(r.contains("leaving the NTP pool"));
        assert!(r.contains("April/May"));
    }
}
