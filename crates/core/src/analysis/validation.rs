//! ECN-validation confusion matrix: the modern-ECN report section.
//!
//! Joins the truth-free [`ValidationCounts`] accumulator against the
//! blueprint's middlebox ground truth at report time, producing
//! per-truth-class outcome counts and the three headline rates —
//! true-failure (bleached paths the validator correctly failed),
//! false-failure (capable paths it wrongly failed) and missed-bleacher
//! (bleached paths it wrongly validated). The section only exists when
//! the validation pass ran (`ValidationConfig::packets > 0`); campaigns
//! with the pass disabled render byte-identically to pre-validator
//! builds.

use crate::reducers::{Reduce, TraceCtx, ValidationCounts};
use crate::report::render_table;
use crate::trace::TraceRecord;
use ecn_pool::GroundTruth;
use ecn_stack::ValidationOutcome;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Ground-truth path classes the confusion matrix distinguishes. A
/// server can belong to several planted sets (profiles and middlebox
/// placement draw independently); classification picks the first match
/// in declaration order — ECN-hostile classes before benign-marking
/// ones, so a bleached-and-AQM path counts as bleached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruthClass {
    /// Behind an always-on bleacher — the validator *should* fail.
    BleachedAlways,
    /// Behind a probabilistic bleacher (failure detectable, not
    /// guaranteed per round).
    BleachedSometimes,
    /// Behind a CE-suppressing (CE→ECT(0)) middlebox.
    CeSuppressed,
    /// Behind an ECT(1)→ECT(0) downgrading middlebox.
    Ect1Downgraded,
    /// Behind an ECT-dropping middlebox (marked trains black-hole).
    EctDropper,
    /// Behind a RED-style CE-marking AQM edge (marks are benign).
    AqmRed,
    /// Behind a CoDel-style sojourn-marking bottleneck (benign).
    AqmCodel,
    /// None of the above: a clean, ECN-capable path.
    Clean,
}

impl TruthClass {
    /// Every class, in report row order.
    pub const ALL: [TruthClass; 8] = [
        TruthClass::Clean,
        TruthClass::BleachedAlways,
        TruthClass::BleachedSometimes,
        TruthClass::CeSuppressed,
        TruthClass::Ect1Downgraded,
        TruthClass::EctDropper,
        TruthClass::AqmRed,
        TruthClass::AqmCodel,
    ];

    /// Dense index (report row order).
    pub fn index(self) -> usize {
        TruthClass::ALL.iter().position(|c| *c == self).unwrap()
    }

    /// Report row label.
    pub fn label(self) -> &'static str {
        match self {
            TruthClass::Clean => "clean",
            TruthClass::BleachedAlways => "bleached (always)",
            TruthClass::BleachedSometimes => "bleached (sometimes)",
            TruthClass::CeSuppressed => "ce-suppressor",
            TruthClass::Ect1Downgraded => "ect1-downgrade",
            TruthClass::EctDropper => "ect-dropper",
            TruthClass::AqmRed => "aqm-red",
            TruthClass::AqmCodel => "aqm-codel",
        }
    }

    /// Should a correct validator report this path `Capable`? AQM marks
    /// are benign; everything else planted is ECN-hostile.
    pub fn expects_capable(self) -> bool {
        matches!(
            self,
            TruthClass::Clean | TruthClass::AqmRed | TruthClass::AqmCodel
        )
    }
}

/// The rendered section: per-class outcome counts plus headline rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// `matrix[class.index()][outcome.index()]` — validation rounds per
    /// (ground-truth class, validator verdict) cell.
    pub matrix: [[u64; 6]; 8],
    /// Total validation rounds.
    pub rounds: u64,
    /// Distinct servers validated.
    pub servers: usize,
}

/// Classify one server against the planted ground truth.
fn classify(truth: &GroundTruth, addr: Ipv4Addr) -> TruthClass {
    let sets: [(&[Ipv4Addr], TruthClass); 7] = [
        (&truth.bleached_servers, TruthClass::BleachedAlways),
        (
            &truth.bleached_sometimes_servers,
            TruthClass::BleachedSometimes,
        ),
        (&truth.ce_suppressed_servers, TruthClass::CeSuppressed),
        (&truth.ect1_downgraded_servers, TruthClass::Ect1Downgraded),
        (&truth.ect_blocked, TruthClass::EctDropper),
        (&truth.aqm_red_servers, TruthClass::AqmRed),
        (&truth.aqm_codel_servers, TruthClass::AqmCodel),
    ];
    for (set, class) in sets {
        if set.contains(&addr) {
            return class;
        }
    }
    TruthClass::Clean
}

/// Build the section from the legacy trace walk: replay the records
/// through the streaming reducer, then join (the differential-suite
/// cross-check path).
pub fn validation_report(traces: &[TraceRecord], truth: &GroundTruth) -> Option<ValidationReport> {
    let mut counts = ValidationCounts::default();
    for (i, t) in traces.iter().enumerate() {
        counts.observe_trace(t, &TraceCtx::whole(0, i));
    }
    ValidationReport::from_counts(&counts, truth)
}

impl ValidationReport {
    /// Join the streamed outcome counters against the ground truth —
    /// the single derivation both report paths share. `None` when the
    /// validation pass never ran.
    pub fn from_counts(counts: &ValidationCounts, truth: &GroundTruth) -> Option<ValidationReport> {
        if counts.is_empty() {
            return None;
        }
        let mut matrix = [[0u64; 6]; 8];
        for (addr, outcomes) in &counts.per_server {
            let row = &mut matrix[classify(truth, *addr).index()];
            for (slot, n) in row.iter_mut().zip(outcomes) {
                *slot += n;
            }
        }
        Some(ValidationReport {
            matrix,
            rounds: counts.rounds,
            servers: counts.per_server.len(),
        })
    }

    fn class_rounds(&self, class: TruthClass) -> u64 {
        self.matrix[class.index()].iter().sum()
    }

    fn class_failed(&self, class: TruthClass) -> u64 {
        ValidationOutcome::ALL
            .iter()
            .filter(|o| o.is_failed())
            .map(|o| self.matrix[class.index()][o.index()])
            .sum()
    }

    /// Of the rounds against always-bleached paths, the fraction the
    /// validator correctly failed.
    pub fn true_failure_rate(&self) -> f64 {
        ratio(
            self.class_failed(TruthClass::BleachedAlways),
            self.class_rounds(TruthClass::BleachedAlways),
        )
    }

    /// Of the rounds against genuinely capable paths (clean or behind a
    /// benign-marking AQM), the fraction the validator wrongly failed.
    pub fn false_failure_rate(&self) -> f64 {
        let (mut failed, mut rounds) = (0, 0);
        for class in TruthClass::ALL {
            if class.expects_capable() {
                failed += self.class_failed(class);
                rounds += self.class_rounds(class);
            }
        }
        ratio(failed, rounds)
    }

    /// Of the rounds against always-bleached paths, the fraction the
    /// validator wrongly reported `Capable`.
    pub fn missed_bleacher_rate(&self) -> f64 {
        ratio(
            self.matrix[TruthClass::BleachedAlways.index()][ValidationOutcome::Capable.index()],
            self.class_rounds(TruthClass::BleachedAlways),
        )
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for class in TruthClass::ALL {
            let row = &self.matrix[class.index()];
            if row.iter().all(|n| *n == 0) {
                continue; // class not planted (or never validated)
            }
            let mut cells = vec![class.label().to_string()];
            cells.extend(
                ValidationOutcome::ALL
                    .iter()
                    .map(|o| row[o.index()].to_string()),
            );
            rows.push(cells);
        }
        let mut out = render_table(
            "ECN validation: outcomes per middlebox ground-truth class",
            &[
                "ground truth",
                "capable",
                "bleached",
                "remarked",
                "black-hole",
                "ce-suppressed",
                "inconclusive",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nrounds: {} over {} servers\ntrue-failure rate (bleached paths failed): {}\nfalse-failure rate (capable paths failed): {}\nmissed-bleacher rate (bleached paths validated): {}\n",
            self.rounds,
            self.servers,
            render_rate(self.true_failure_rate()),
            render_rate(self.false_failure_rate()),
            render_rate(self.missed_bleacher_rate()),
        ));
        out
    }
}

fn ratio(hits: u64, total: u64) -> f64 {
    if total == 0 {
        f64::NAN
    } else {
        hits as f64 / total as f64
    }
}

fn render_rate(r: f64) -> String {
    if r.is_nan() {
        "n/a (no such paths)".to_string()
    } else {
        format!("{:.1}%", 100.0 * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::{TcpProbeResult, UdpProbeResult};
    use crate::trace::ServerOutcome;
    use ecn_netsim::Nanos;

    fn outcome(addr: Ipv4Addr, v: ValidationOutcome) -> ServerOutcome {
        let udp = UdpProbeResult {
            reachable: true,
            attempts: 1,
            response_ecn: None,
            rtt: None,
        };
        let tcp = TcpProbeResult {
            reachable: true,
            http_status: Some(302),
            requested_ecn: true,
            negotiated_ecn: true,
            syn_ack_flags: None,
            close_reason: None,
        };
        ServerOutcome {
            server: addr,
            udp_plain: udp,
            udp_ect: udp,
            tcp_plain: tcp.clone(),
            tcp_ecn: tcp,
            validation: Some(v),
        }
    }

    fn trace(outcomes: Vec<ServerOutcome>) -> TraceRecord {
        TraceRecord {
            vantage_key: "v".into(),
            vantage_name: "V".into(),
            batch: 1,
            started_at: Nanos::ZERO,
            outcomes,
        }
    }

    fn truth_with(bleached: &[Ipv4Addr], aqm: &[Ipv4Addr]) -> GroundTruth {
        GroundTruth {
            bleached_servers: bleached.to_vec(),
            aqm_red_servers: aqm.to_vec(),
            ..GroundTruth::default()
        }
    }

    #[test]
    fn matrix_joins_outcomes_against_truth() {
        let bleached = Ipv4Addr::new(10, 0, 0, 1);
        let aqm = Ipv4Addr::new(10, 0, 0, 2);
        let clean = Ipv4Addr::new(10, 0, 0, 3);
        let truth = truth_with(&[bleached], &[aqm]);
        let traces = vec![
            trace(vec![
                outcome(bleached, ValidationOutcome::FailedBleached),
                outcome(aqm, ValidationOutcome::Capable),
                outcome(clean, ValidationOutcome::Capable),
            ]),
            trace(vec![
                outcome(bleached, ValidationOutcome::Capable), // a miss
                outcome(aqm, ValidationOutcome::Capable),
                outcome(clean, ValidationOutcome::FailedBlackHole), // false failure
            ]),
        ];
        let r = validation_report(&traces, &truth).expect("pass ran");
        assert_eq!(r.rounds, 6);
        assert_eq!(r.servers, 3);
        let cell = |c: TruthClass, o: ValidationOutcome| r.matrix[c.index()][o.index()];
        assert_eq!(
            cell(
                TruthClass::BleachedAlways,
                ValidationOutcome::FailedBleached
            ),
            1
        );
        assert_eq!(
            cell(TruthClass::BleachedAlways, ValidationOutcome::Capable),
            1
        );
        assert_eq!(cell(TruthClass::AqmRed, ValidationOutcome::Capable), 2);
        assert!((r.true_failure_rate() - 0.5).abs() < 1e-12);
        assert!((r.missed_bleacher_rate() - 0.5).abs() < 1e-12);
        // 1 failure over 4 capable-path rounds (2 aqm + 2 clean)
        assert!((r.false_failure_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disabled_pass_yields_no_section() {
        let clean = Ipv4Addr::new(10, 0, 0, 3);
        let mut o = outcome(clean, ValidationOutcome::Capable);
        o.validation = None;
        assert!(validation_report(&[trace(vec![o])], &GroundTruth::default()).is_none());
    }

    #[test]
    fn hostile_classes_take_precedence_over_benign() {
        // a server both bleached and behind an AQM counts as bleached
        let both = Ipv4Addr::new(10, 0, 0, 9);
        let truth = truth_with(&[both], &[both]);
        assert_eq!(classify(&truth, both), TruthClass::BleachedAlways);
        assert!(!TruthClass::BleachedAlways.expects_capable());
        assert!(TruthClass::AqmCodel.expects_capable());
    }

    #[test]
    fn render_reports_rates_and_skips_empty_classes() {
        let bleached = Ipv4Addr::new(10, 0, 0, 1);
        let truth = truth_with(&[bleached], &[]);
        let traces = vec![trace(vec![outcome(
            bleached,
            ValidationOutcome::FailedBleached,
        )])];
        let r = validation_report(&traces, &truth).expect("pass ran");
        let text = r.render();
        assert!(text.contains("bleached (always)"));
        assert!(text.contains("true-failure rate"));
        assert!(text.contains("100.0%"));
        assert!(!text.contains("aqm-red"), "empty classes are skipped");
        assert!(text.contains("n/a"), "no capable paths planted");
    }
}
