//! Run declarative scenarios: lower an [`ecn_pool::ScenarioSpec`] to the
//! engine's imperative configuration and execute it.
//!
//! This is the bridge the `ecnudp` CLI drives: a spec file describes the
//! *world and schedule*; this module turns it into the `(PoolPlan,
//! CampaignConfig, EngineConfig)` triple [`crate::engine::run_engine`]
//! consumes. [`ecn_pool::ScenarioSpec::paper2015`] lowers to exactly the
//! defaults of [`crate::engine::run_campaign`], so running the
//! `paper2015` preset is byte-identical to the hard-wired reproduction
//! (gated by `tests/scenario_presets.rs`).

use crate::analysis::FullReport;
use crate::config::CampaignConfig;
use crate::engine::{run_engine, run_engine_observed, EngineConfig, EngineRun};
use crate::events::Subscriber;
use ecn_pool::{ScenarioSpec, ScheduleProfile};
use serde::Serialize;

/// Lower a spec's schedule to the campaign configuration: profile base
/// (paper calendar or the compressed quick one), then the spec's
/// overrides for discovery depth, per-vantage trace caps, and the
/// traceroute switch.
pub fn campaign_config(spec: &ScenarioSpec) -> CampaignConfig {
    let mut cfg = match spec.schedule.profile {
        ScheduleProfile::Paper => CampaignConfig {
            seed: spec.seed,
            ..CampaignConfig::default()
        },
        ScheduleProfile::Quick => CampaignConfig::quick(spec.seed),
    };
    if spec.schedule.discovery_rounds > 0 {
        cfg.discovery_rounds = spec.schedule.discovery_rounds;
    }
    if spec.schedule.traces_per_vantage > 0 {
        cfg.traces_per_vantage = Some(spec.schedule.traces_per_vantage);
    }
    cfg.run_traceroute = spec.traceroute;
    cfg.validation.packets = spec.validator.packets.min(255) as u32;
    cfg.validation.ce_canary = spec.validator.ce_canary;
    cfg.validation.ect1_per_1000 = spec.validator.ect1_per_1000.round().clamp(0.0, 1000.0) as u32;
    cfg
}

/// Lower a spec to the engine configuration. Only `target_chunks` is part
/// of the experiment definition; shard count stays a runtime concurrency
/// knob (CLI `--shards` / default parallelism) because it cannot change
/// any result byte. The `[resilience]` section lowers to the supervised
/// driver's knobs (retries, per-worker deadline, checkpoint sink) — all
/// pure execution policy, also unable to change a result byte.
pub fn engine_config(spec: &ScenarioSpec) -> EngineConfig {
    let res = &spec.resilience;
    EngineConfig {
        target_chunks: spec.schedule.target_chunks,
        max_worker_retries: res.max_worker_retries as u32,
        worker_timeout: (res.worker_timeout_s > 0.0)
            .then(|| std::time::Duration::from_secs_f64(res.worker_timeout_s)),
        checkpoint: (!res.checkpoint.is_empty()).then(|| res.checkpoint.clone().into()),
        ..EngineConfig::default()
    }
}

/// Run a declarative scenario through the sharded engine with default
/// concurrency. Equivalent to [`run_scenario_sharded`] with
/// `shards = None`.
///
/// ```
/// use ecn_core::{run_scenario, FullReport};
/// use ecn_pool::ScenarioSpec;
///
/// // A tiny world: 20 servers, compressed calendar, one trace/vantage.
/// let spec = ScenarioSpec::from_toml_str(
///     r#"
///     seed = 42
///     traceroute = false
///     [population]
///     servers = 20
///     [topology]
///     t1_count = 3
///     t2_count = 3
///     [middleboxes]
///     ect_droppers_per_1000 = 50
///     [schedule]
///     profile = "quick"
///     traces_per_vantage = 1
///     discovery_rounds = 10
///     "#,
/// )
/// .unwrap();
/// let run = run_scenario(&spec);
/// let report = FullReport::from_campaign(&run.result);
/// assert!(report.render().contains("Table 2"));
/// ```
pub fn run_scenario(spec: &ScenarioSpec) -> EngineRun {
    run_scenario_sharded(spec, None)
}

/// Run a declarative scenario with an explicit shard count (`None` =
/// available parallelism). Shards are a pure concurrency knob: any value
/// renders the same report byte-for-byte.
pub fn run_scenario_sharded(spec: &ScenarioSpec, shards: Option<usize>) -> EngineRun {
    let eng = EngineConfig {
        shards,
        ..engine_config(spec)
    };
    run_engine(&spec.plan(), &campaign_config(spec), &eng)
}

/// Run a declarative scenario with explicit shard *and* process counts
/// (`None` shards = available parallelism per process). Like shards,
/// processes are a pure concurrency/memory knob: any combination renders
/// the same report byte-for-byte (`tests/process_determinism.rs`). With
/// `processes > 1` the campaign runs through [`crate::mp`]: unit
/// partitions execute in spawned worker processes and only their merged
/// aggregates come home, so peak RSS per process stays bounded.
pub fn run_scenario_parallel(
    spec: &ScenarioSpec,
    shards: Option<usize>,
    processes: usize,
) -> EngineRun {
    let eng = EngineConfig {
        shards,
        processes: processes.max(1),
        ..engine_config(spec)
    };
    run_engine(&spec.plan(), &campaign_config(spec), &eng)
}

/// [`run_scenario_sharded`] with a typed event subscriber (see
/// [`crate::events`]): the campaign result is byte-identical to the
/// unobserved run, and the returned subscriber holds whatever it
/// accumulated (its `finish` has already run).
pub fn run_scenario_observed<S: Subscriber>(
    spec: &ScenarioSpec,
    shards: Option<usize>,
    subscriber: S,
) -> (EngineRun, S) {
    let eng = EngineConfig {
        shards,
        ..engine_config(spec)
    };
    run_engine_observed(&spec.plan(), &campaign_config(spec), &eng, subscriber)
}

/// Machine-readable summary of one scenario run — what `ecnudp run
/// --json` emits: scenario identity, engine shape, and the headline
/// numbers of every paper artefact. Everything except `wall_ms` is a
/// deterministic function of the spec.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Scenario name from the spec.
    pub scenario: String,
    /// Experiment seed.
    pub seed: u64,
    /// Population size the spec requested.
    pub servers: usize,
    /// Vantage points measured from.
    pub vantages: usize,
    /// Engine shards actually used (summed across worker processes).
    pub shards: usize,
    /// Worker processes (1 = in-process).
    pub processes: usize,
    /// Reducer merge-tree depth (shard rounds + process rounds).
    pub merge_depth: usize,
    /// Work units executed.
    pub units: usize,
    /// Targets discovered.
    pub targets: usize,
    /// Logical traces observed.
    pub traces: usize,
    /// Traceroute paths surveyed (0 when the survey is off).
    pub traceroute_paths: u64,
    /// Figure 2a: of not-ECT-reachable observations, % also reachable
    /// with ECT(0).
    pub fig2a_pct: f64,
    /// Figure 2b: of ECT-reachable observations, % also reachable
    /// without.
    pub fig2b_pct: f64,
    /// Figure 5: % of TCP-reachable observations negotiating ECN.
    pub tcp_ecn_negotiated_pct: f64,
    /// Table 2: φ correlation between UDP-ECT-unreachable and
    /// refuses-TCP-ECN.
    pub table2_phi: f64,
    /// Figure 4: responding hop observations.
    pub survey_total_hops: u64,
    /// Figure 4: hops that always passed the mark.
    pub survey_pass_hops: u64,
    /// Figure 4: hops observed stripping the mark.
    pub survey_strip_hops: u64,
    /// Figure 4: distinct first-strip locations.
    pub survey_strip_locations: u64,
    /// End-to-end wall clock, milliseconds (nondeterministic, like
    /// `peak_rss_kb`).
    pub wall_ms: f64,
    /// Peak resident set size in kB, max across parent and workers
    /// (`VmHWM`; 0 where procfs is unavailable — nondeterministic).
    pub peak_rss_kb: u64,
}

impl RunSummary {
    /// Assemble the summary from a finished run and its rendered report.
    pub fn new(spec: &ScenarioSpec, run: &EngineRun, report: &FullReport) -> RunSummary {
        let agg = &run.result.aggregates;
        RunSummary {
            scenario: spec.name.clone(),
            seed: spec.seed,
            servers: spec.population.servers,
            vantages: spec.vantage_count,
            shards: run.shards,
            processes: run.processes,
            merge_depth: run.merge_depth,
            units: run.units,
            targets: run.result.targets.len(),
            traces: agg.trace_stats.len(),
            traceroute_paths: agg.hops.paths,
            fig2a_pct: agg.reachability.pct_a(),
            fig2b_pct: agg.reachability.pct_b(),
            tcp_ecn_negotiated_pct: agg.reachability.negotiated_pct(),
            table2_phi: agg.table2.phi(),
            survey_total_hops: report.figure4.total_hops as u64,
            survey_pass_hops: report.figure4.pass_hops as u64,
            survey_strip_hops: report.figure4.strip_hops as u64,
            survey_strip_locations: report.figure4.strip_locations as u64,
            wall_ms: run.timing.wall.as_secs_f64() * 1e3,
            peak_rss_kb: run.peak_rss_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_pool::PoolPlan;

    #[test]
    fn paper2015_lowers_to_run_campaign_defaults() {
        let spec = ScenarioSpec::paper2015();
        assert_eq!(spec.plan(), PoolPlan::paper());
        assert_eq!(campaign_config(&spec), CampaignConfig::default());
        assert_eq!(engine_config(&spec), EngineConfig::default());
    }

    #[test]
    fn quick_profile_and_overrides_lower_into_the_config() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
            seed = 9
            traceroute = false
            [schedule]
            profile = "quick"
            traces_per_vantage = 2
            discovery_rounds = 12
            target_chunks = 3
            "#,
        )
        .unwrap();
        let cfg = campaign_config(&spec);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.discovery_rounds, 12);
        assert_eq!(cfg.traces_per_vantage, Some(2));
        assert!(!cfg.run_traceroute);
        assert_eq!(cfg.batch2_start, CampaignConfig::quick(9).batch2_start);
        assert_eq!(engine_config(&spec).target_chunks, 3);
    }

    #[test]
    fn scenario_run_matches_equivalent_run_campaign() {
        // the spec path and the hand-built path must be the same campaign
        let spec = ScenarioSpec::from_toml_str(
            r#"
            seed = 2015
            [population]
            servers = 24
            always_down_per_1000 = 42
            churn_per_1000 = 42
            [topology]
            t1_count = 3
            t2_count = 3
            [middleboxes]
            ect_droppers_per_1000 = 42
            flaky_ect_droppers_per_1000 = 42
            not_ect_droppers_per_1000 = 42
            ec2_not_ect_droppers_per_1000 = 42
            bleach_pe_per_1000 = 42
            bleach_border_per_1000 = 42
            bleach_interior_per_1000 = 42
            bleach_access_per_1000 = 42
            bleach_prob_pe_per_1000 = 42
            bleach_prob_access_per_1000 = 42
            [schedule]
            profile = "quick"
            traces_per_vantage = 1
            discovery_rounds = 20
            "#,
        )
        .unwrap();
        let via_spec = run_scenario_sharded(&spec, Some(2));
        let direct = crate::engine::run_campaign(&spec.plan(), &campaign_config(&spec));
        assert_eq!(
            FullReport::from_campaign(&via_spec.result).render(),
            FullReport::from_campaign(&direct).render(),
            "spec-driven and direct campaigns must render identically"
        );
        let report = FullReport::from_campaign(&via_spec.result);
        let summary = RunSummary::new(&spec, &via_spec, &report);
        assert_eq!(summary.servers, 24);
        assert_eq!(summary.traces, 13);
        assert!(summary.fig2a_pct > 0.0);
        // and the summary serialises
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"scenario\""));
    }
}
