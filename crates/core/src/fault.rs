//! Test-only fault injection for the multi-process supervisor
//! (`crate::mp`): the `ECNUDP_FAULT` environment protocol.
//!
//! The supervision layer is exercised by **real subprocess failures**,
//! not mocks: a worker spawned with `ECNUDP_FAULT` set sabotages itself
//! at a protocol-accurate point (crash mid-partition, hang before the
//! payload write, truncate or corrupt the payload JSON), and the parent
//! has to recover through the ordinary retry path. The env var is read
//! only inside worker mode ([`crate::mp::maybe_worker`]) and once per
//! multi-process run in the parent — a campaign without the variable
//! never touches this module, preserving the zero-cost contract.
//!
//! ## Directive grammar
//!
//! Comma-separated directives; each is `kind=value` plus optional
//! `:key=value` arguments:
//!
//! ```text
//! crash-after-unit=K:worker=W[:attempts=N]  run K units, then exit(101)
//! panic=W[:attempts=N]                      panic! inside the worker
//! hang=W[:attempts=N]                       never write the payload
//! truncate-payload=W[:attempts=N]           write half the payload JSON
//! corrupt-json=W[:attempts=N]               write syntactically bad JSON
//! parent-exit-after-payload=K               parent exit(86) after K payloads
//! ```
//!
//! `attempts=N` (default 1) scopes a fault to a worker's first `N`
//! spawn attempts: the fault fires while `attempt < N` and the retry
//! after that succeeds, which is how the determinism suite proves
//! recovery. Use a large `N` to exhaust a retry budget on purpose.
//!
//! Malformed directives are **ignored with a stderr warning** rather
//! than rejected: this is a test harness knob, and a typo must never
//! take down a production campaign that happens to inherit the variable.

use std::fmt;

/// The environment variable carrying fault directives.
pub(crate) const FAULT_ENV: &str = "ECNUDP_FAULT";

/// The parent-process exit code used by `parent-exit-after-payload`
/// (distinct from worker and CLI codes so resume tests can assert on it).
pub(crate) const PARENT_EXIT_CODE: i32 = 86;

/// The exit code an injected `crash-after-unit` worker dies with.
pub(crate) const CRASH_EXIT_CODE: i32 = 101;

/// What a sabotaged worker does to itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerFault {
    /// `panic!` right after parsing the request (stderr shows a real
    /// panic message, exercising the `[worker N]` relay tagging).
    Panic,
    /// Run the first `K` units of the partition, then `exit(101)` without
    /// writing a payload — the paid-work-lost crash case.
    CrashAfterUnits(usize),
    /// Read the request, then sleep forever: the hang the per-worker
    /// deadline (`--worker-timeout`) exists to catch.
    Hang,
    /// Run the partition, then write only the first half of the payload
    /// JSON and exit 0 — truncated payload with a *successful* status.
    TruncatePayload,
    /// Run the partition, then write syntactically invalid JSON.
    CorruptJson,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFault::Panic => write!(f, "panic"),
            WorkerFault::CrashAfterUnits(k) => write!(f, "crash-after-unit={k}"),
            WorkerFault::Hang => write!(f, "hang"),
            WorkerFault::TruncatePayload => write!(f, "truncate-payload"),
            WorkerFault::CorruptJson => write!(f, "corrupt-json"),
        }
    }
}

/// One parsed directive: a fault, the worker it targets, and how many
/// spawn attempts it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Directive {
    fault: WorkerFault,
    worker: usize,
    attempts: u32,
}

/// The parsed `ECNUDP_FAULT` value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct FaultPlan {
    directives: Vec<Directive>,
    /// Parent-side: `std::process::exit(86)` after this many worker
    /// payloads were merged (and checkpointed) — simulates the parent
    /// dying mid-campaign for `--resume` tests.
    pub(crate) parent_exit_after_payloads: Option<usize>,
}

impl FaultPlan {
    /// Parse the process's own `ECNUDP_FAULT` (empty plan when unset).
    pub(crate) fn from_env() -> FaultPlan {
        match std::env::var(FAULT_ENV) {
            Ok(v) => FaultPlan::parse(&v),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Parse a directive string (see the module docs for the grammar).
    pub(crate) fn parse(input: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for raw in input.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            match parse_directive(raw) {
                Ok(Parsed::Worker(d)) => plan.directives.push(d),
                Ok(Parsed::ParentExit(k)) => plan.parent_exit_after_payloads = Some(k),
                Err(why) => eprintln!("{FAULT_ENV}: ignoring `{raw}`: {why}"),
            }
        }
        plan
    }

    /// The fault (if any) a worker must inject on this spawn attempt.
    /// First matching directive wins; a directive covers attempts
    /// `0..attempts`.
    pub(crate) fn for_worker(&self, worker: usize, attempt: u32) -> Option<WorkerFault> {
        self.directives
            .iter()
            .find(|d| d.worker == worker && attempt < d.attempts)
            .map(|d| d.fault)
    }

    /// Whether any directive is active (lets the parent skip per-spawn
    /// bookkeeping entirely on clean runs).
    pub(crate) fn is_empty(&self) -> bool {
        self.directives.is_empty() && self.parent_exit_after_payloads.is_none()
    }
}

enum Parsed {
    Worker(Directive),
    ParentExit(usize),
}

fn parse_directive(raw: &str) -> Result<Parsed, String> {
    let mut parts = raw.split(':');
    let head = parts.next().unwrap_or_default();
    let (kind, value) = head
        .split_once('=')
        .ok_or_else(|| "expected `kind=value`".to_string())?;
    let mut worker: Option<usize> = None;
    let mut attempts: u32 = 1;
    let mut crash_units: Option<usize> = None;
    match kind {
        "crash-after-unit" => {
            crash_units = Some(parse_num(value, "crash-after-unit")?);
        }
        "panic" | "hang" | "truncate-payload" | "corrupt-json" => {
            worker = Some(parse_num(value, kind)?);
        }
        "parent-exit-after-payload" => {
            return Ok(Parsed::ParentExit(parse_num(value, kind)?));
        }
        other => return Err(format!("unknown fault kind `{other}`")),
    }
    for arg in parts {
        let (k, v) = arg
            .split_once('=')
            .ok_or_else(|| format!("argument `{arg}` is not `key=value`"))?;
        match k {
            "worker" => worker = Some(parse_num(v, "worker")?),
            "attempts" => attempts = parse_num(v, "attempts")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let worker = worker.ok_or_else(|| "missing worker index".to_string())?;
    let fault = match crash_units {
        Some(k) => WorkerFault::CrashAfterUnits(k),
        None => match kind {
            "panic" => WorkerFault::Panic,
            "hang" => WorkerFault::Hang,
            "truncate-payload" => WorkerFault::TruncatePayload,
            "corrupt-json" => WorkerFault::CorruptJson,
            _ => unreachable!("kind validated above"),
        },
    };
    Ok(Parsed::Worker(Directive {
        fault,
        worker,
        attempts,
    }))
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("`{what}` needs an integer, got `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "crash-after-unit=2:worker=1, hang=0:attempts=3, truncate-payload=2, \
             corrupt-json=3:attempts=2, panic=4, parent-exit-after-payload=5",
        );
        assert_eq!(plan.for_worker(1, 0), Some(WorkerFault::CrashAfterUnits(2)));
        assert_eq!(plan.for_worker(1, 1), None, "default scope is one attempt");
        assert_eq!(plan.for_worker(0, 2), Some(WorkerFault::Hang));
        assert_eq!(plan.for_worker(0, 3), None);
        assert_eq!(plan.for_worker(2, 0), Some(WorkerFault::TruncatePayload));
        assert_eq!(plan.for_worker(3, 1), Some(WorkerFault::CorruptJson));
        assert_eq!(plan.for_worker(4, 0), Some(WorkerFault::Panic));
        assert_eq!(plan.for_worker(5, 0), None, "untargeted worker is clean");
        assert_eq!(plan.parent_exit_after_payloads, Some(5));
        assert!(!plan.is_empty());
    }

    #[test]
    fn malformed_directives_are_ignored_not_fatal() {
        let plan = FaultPlan::parse("gibberish, crash-after-unit=x:worker=0, hang=1");
        assert_eq!(plan.directives.len(), 1, "only the valid directive stays");
        assert_eq!(plan.for_worker(1, 0), Some(WorkerFault::Hang));
    }

    #[test]
    fn empty_env_is_an_empty_plan() {
        let plan = FaultPlan::parse("");
        assert!(plan.is_empty());
        assert_eq!(plan.for_worker(0, 0), None);
    }
}
