//! The reachability probes of paper §3.
//!
//! *UDP*: an NTP request in a not-ECT or ECT(0)-marked packet, retried up
//! to five times with a one-second timeout. The verdict comes from the
//! parallel capture ("tcpdump session"), not from the socket: a server is
//! reachable iff a response matching any of the session's requests appears
//! on the wire.
//!
//! *TCP*: an HTTP `GET /`, once with a normal SYN and once with an
//! ECN-setup SYN; the capture determines whether the returned SYN-ACK was
//! an ECN-setup SYN-ACK (SYN+ACK+ECE without CWR, RFC 3168 §6.1.1).

use crate::config::{ProbeConfig, ValidationConfig};
use ecn_netsim::{CaptureRef, Direction, Nanos, Sim};
use ecn_services::{echo_request, parse_echo_reply, NtpClient, ECN_ECHO_PORT};
use ecn_stack::{
    CloseReason, EcnValidator, HostHandle, TcpState, ValidationOutcome, ValidatorParams,
};
use ecn_wire::{Ecn, HttpResponse, IpProto, TcpFlags, TcpHeader, UdpHeader};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Result of one UDP probe session against one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UdpProbeResult {
    /// A matching NTP response was captured.
    pub reachable: bool,
    /// Requests sent (1 + retransmissions used).
    pub attempts: u32,
    /// ECN codepoint of the response packet, when reachable.
    pub response_ecn: Option<Ecn>,
    /// Time from first request to the captured response.
    pub rtt: Option<Nanos>,
}

/// Probe a server's NTP service with `ecn`-marked UDP requests.
pub fn probe_udp(
    sim: &mut Sim,
    handle: &HostHandle,
    capture: &CaptureRef,
    server: Ipv4Addr,
    ecn: Ecn,
    cfg: &ProbeConfig,
) -> UdpProbeResult {
    // The verdict comes from the capture, so the socket is a sink: the
    // port is held open (no port-unreachable) but response payloads are
    // never copied into an inbox.
    let sock = handle.udp_bind_sink();
    let session_start = sim.now();
    let mut sent = Vec::with_capacity(1 + cfg.udp_retries as usize);
    let mut req_wire = ecn_wire::WireBuf::with_capacity(ecn_wire::NTP_PACKET_LEN);
    let mut attempts = 0;
    let mut outcome = UdpProbeResult {
        reachable: false,
        attempts: 0,
        response_ecn: None,
        rtt: None,
    };
    'session: for _ in 0..=cfg.udp_retries {
        attempts += 1;
        let req = NtpClient::request(sim.now());
        req.encode_into(req_wire.start());
        handle.udp_send(sim, sock, (server, 123), req_wire.as_slice(), ecn);
        sent.push(req);
        let deadline = sim.now() + cfg.udp_timeout;
        sim.run_until(deadline);
        // Verdict from the capture, as per the methodology. The scan
        // borrows each captured packet in place (header decode + payload
        // slice) instead of re-materialising owned datagrams.
        let cap = capture.lock();
        for p in cap.since(session_start) {
            if p.dir != Direction::In {
                continue;
            }
            let Some(h) = p.ip_header() else { continue };
            if h.src != server || h.protocol != IpProto::Udp {
                continue;
            }
            let Ok((uh, body)) = UdpHeader::decode(h.src, h.dst, p.ip_payload()) else {
                continue;
            };
            if uh.src_port != 123 || uh.dst_port != sock {
                continue;
            }
            if sent.iter().any(|req| NtpClient::matches(req, body)) {
                outcome = UdpProbeResult {
                    reachable: true,
                    attempts,
                    response_ecn: Some(h.ecn),
                    rtt: Some(p.ts.saturating_sub(session_start)),
                };
                break 'session;
            }
        }
        drop(cap);
    }
    handle.udp_close(sock);
    outcome.attempts = attempts;
    outcome
}

/// Run one RFC 9000-style ECN validation round against a server through
/// the pool's validation echo service (port 3168): drive the
/// [`EcnValidator`] state machine by sending its marked testing train
/// back-to-back (so sojourn-marking AQM bottlenecks see a real queue),
/// then feed every echoed (sent, arrived) codepoint report back and
/// conclude. `session_ecn` is the codepoint this endpoint marks with
/// (ECT(0), or ECT(1) for L4S-style senders); `control_reachable` is the
/// trace's not-ECT verdict for the same server, used to tell a marked-
/// traffic black hole from a dead host.
pub fn probe_validation(
    sim: &mut Sim,
    handle: &HostHandle,
    server: Ipv4Addr,
    session_ecn: Ecn,
    control_reachable: bool,
    cfg: &ValidationConfig,
) -> ValidationOutcome {
    let mut validator = EcnValidator::new(ValidatorParams {
        testing_packets: cfg.packets,
        ce_canary: cfg.ce_canary,
        ..ValidatorParams::default()
    });
    // A real inbox socket (not a sink): the verdict reads the peer's
    // *report payload*, the analogue of QUIC's ACK-ECN counts — the
    // capture only sees what arrived locally, which says nothing about
    // what the server received.
    let sock = handle.udp_bind(0);
    let packets = cfg.packets.min(255);
    let mut sent = Vec::with_capacity(packets as usize);
    for seq in 0..packets {
        let mark = validator.next_codepoint(session_ecn);
        handle.udp_send(
            sim,
            sock,
            (server, ECN_ECHO_PORT),
            &echo_request(seq as u8),
            mark,
        );
        sent.push(mark);
    }
    sim.run_until(sim.now() + cfg.timeout);
    for msg in handle.udp_recv_all(sock) {
        if let Some((seq, arrived)) = parse_echo_reply(&msg.payload) {
            if let Some(&mark) = sent.get(seq as usize) {
                validator.on_peer_report(mark, arrived);
            }
        }
    }
    handle.udp_close(sock);
    validator.conclude(sim.now(), control_reachable)
}

/// Result of one TCP/HTTP probe against one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpProbeResult {
    /// An HTTP response (even partial) came back.
    pub reachable: bool,
    /// HTTP status code if a response head was parsed.
    pub http_status: Option<u16>,
    /// Did we send an ECN-setup SYN?
    pub requested_ecn: bool,
    /// Capture-verified: the SYN-ACK was an ECN-setup SYN-ACK.
    pub negotiated_ecn: bool,
    /// Raw SYN-ACK flag bits seen on the wire (diagnostics; detects
    /// reflect-flags middleboxes).
    pub syn_ack_flags: Option<u16>,
    /// Why the connection ended, if it failed.
    pub close_reason: Option<CloseReason>,
}

/// Probe a server's web service with an HTTP GET, optionally negotiating
/// ECN.
pub fn probe_tcp(
    sim: &mut Sim,
    handle: &HostHandle,
    capture: &CaptureRef,
    server: Ipv4Addr,
    use_ecn: bool,
    cfg: &ProbeConfig,
) -> TcpProbeResult {
    let session_start = sim.now();
    let conn = handle.tcp_connect(sim, (server, 80), use_ecn);

    // Wait for the handshake to resolve (state-only polls: no snapshot
    // buffer clones in the wait loop).
    let deadline = sim.now() + cfg.tcp_handshake_wait;
    loop {
        match handle.conn_state(conn) {
            Some(TcpState::Established) | Some(TcpState::Closed) | None => break,
            _ if sim.now() >= deadline => break,
            _ => {
                let step = (deadline.0 - sim.now().0).min(cfg.poll_quantum.0);
                sim.run_for(Nanos(step));
            }
        }
    }

    let mut result = TcpProbeResult {
        reachable: false,
        http_status: None,
        requested_ecn: use_ecn,
        negotiated_ecn: false,
        syn_ack_flags: None,
        close_reason: None,
    };

    let established = matches!(handle.conn_state(conn), Some(TcpState::Established));
    if established {
        // Issue the GET and wait for a complete response or teardown. The
        // request bytes are `HttpRequest::get_root(&server.to_string())
        // .encode()` formatted in one pass — same wire bytes, one buffer
        // instead of an owned request struct's dozen small strings.
        use std::io::Write as _;
        let mut req = Vec::with_capacity(96);
        let _ = write!(
            req,
            "GET / HTTP/1.1\r\nHost: {server}\r\nUser-Agent: ecn-udp-study/1.0\r\nConnection: close\r\n\r\n"
        );
        handle.tcp_send(sim, conn, &req);
        let deadline = sim.now() + cfg.http_wait;
        while let Some((state, peer_closed, done)) =
            handle.conn_ready(conn, HttpResponse::is_complete)
        {
            if done || peer_closed || state == TcpState::Closed || sim.now() >= deadline {
                break;
            }
            let step = (deadline.0 - sim.now().0).min(cfg.poll_quantum.0);
            sim.run_for(Nanos(step));
        }
        // Status parse borrows the receive buffer in place — no snapshot
        // clone for a verdict that only needs the status code.
        if let Some(Ok(status)) = handle.with_received(conn, HttpResponse::status_of) {
            result.reachable = true;
            result.http_status = Some(status);
        }
        handle.tcp_close(sim, conn);
        sim.run_for(Nanos::from_millis(500));
    }
    if let Some(reason) = handle.conn_close_reason(conn) {
        result.close_reason = reason;
    }
    handle.remove_conn(conn);

    // Capture-verified ECN verdict: find the first SYN-ACK from the server.
    let cap = capture.lock();
    for p in cap.since(session_start) {
        if p.dir != Direction::In {
            continue;
        }
        let Some(h) = p.ip_header() else { continue };
        if h.src != server || h.protocol != IpProto::Tcp {
            continue;
        }
        let Ok(th) = TcpHeader::decode_fields(p.ip_payload()) else {
            continue;
        };
        if th.flags.contains(TcpFlags::SYN) && th.flags.contains(TcpFlags::ACK) {
            result.syn_ack_flags = Some(th.flags.0);
            result.negotiated_ecn = use_ecn && th.flags.is_ecn_setup_syn_ack();
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecn_pool::{build_scenario, PoolPlan, SpecialBehaviour};
    use ecn_stack::AvailabilityModel;

    #[test]
    fn inline_get_matches_http_request_encoding() {
        // probe_tcp formats the GET in one pass; it must stay
        // byte-identical to the structured request it replaced, or the
        // probe silently diverges from the documented methodology.
        use std::io::Write as _;
        for server in [Ipv4Addr::new(192, 0, 2, 80), Ipv4Addr::new(128, 1, 24, 0)] {
            let mut inline = Vec::with_capacity(96);
            let _ = write!(
                inline,
                "GET / HTTP/1.1\r\nHost: {server}\r\nUser-Agent: ecn-udp-study/1.0\r\nConnection: close\r\n\r\n"
            );
            let structured = ecn_wire::HttpRequest::get_root(&server.to_string()).encode();
            assert_eq!(inline, structured);
        }
    }

    #[test]
    fn udp_probe_reaches_healthy_server_and_reports_rtt() {
        let mut sc = build_scenario(&PoolPlan::scaled(30), 11);
        let v = sc.vantages[4].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[4].node);
        let target = sc
            .servers
            .iter()
            .find(|s| {
                s.profile.special == SpecialBehaviour::None
                    && s.profile.availability == AvailabilityModel::AlwaysUp
            })
            .map(|s| s.addr)
            .expect("healthy server");
        let cfg = ProbeConfig::default();
        let r = probe_udp(&mut sc.sim, &v, &cap, target, Ecn::Ect0, &cfg);
        assert!(r.reachable);
        assert!(r.rtt.expect("rtt") > Nanos::ZERO);
        assert_eq!(r.response_ecn, Some(Ecn::NotEct), "NTP replies are not-ECT");
    }

    #[test]
    fn udp_probe_times_out_on_dead_server_after_six_attempts() {
        let mut sc = build_scenario(&PoolPlan::scaled(30), 12);
        let v = sc.vantages[0].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[0].node);
        let dead = sc
            .servers
            .iter()
            .find(|s| s.profile.availability == AvailabilityModel::AlwaysDown)
            .map(|s| s.addr)
            .expect("dead server");
        let cfg = ProbeConfig::default();
        let t0 = sc.sim.now();
        let r = probe_udp(&mut sc.sim, &v, &cap, dead, Ecn::NotEct, &cfg);
        assert!(!r.reachable);
        assert_eq!(r.attempts, 6, "initial + 5 retransmissions");
        let elapsed = sc.sim.now().saturating_sub(t0);
        assert!(elapsed >= Nanos::from_secs(6), "waited the full schedule");
    }

    #[test]
    fn tcp_probe_gets_redirect_and_negotiates_ecn() {
        let mut sc = build_scenario(&PoolPlan::scaled(40), 13);
        let v = sc.vantages[8].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[8].node);
        let target = sc
            .servers
            .iter()
            .find(|s| {
                s.profile.web.as_ref().map(|w| w.ecn) == Some(ecn_stack::EcnMode::On)
                    && s.profile.availability == AvailabilityModel::AlwaysUp
                    && s.profile.special == SpecialBehaviour::None
                    && !s.profile.web.as_ref().map(|w| w.plain_ok).unwrap_or(false)
            })
            .map(|s| s.addr)
            .expect("ecn web server");
        let cfg = ProbeConfig::default();
        let r = probe_tcp(&mut sc.sim, &v, &cap, target, true, &cfg);
        assert!(r.reachable);
        assert_eq!(r.http_status, Some(302), "pool redirect");
        assert!(r.negotiated_ecn);
        // and without requesting ECN, negotiation does not happen
        let r2 = probe_tcp(&mut sc.sim, &v, &cap, target, false, &cfg);
        assert!(r2.reachable);
        assert!(!r2.negotiated_ecn);
        assert!(!r2.requested_ecn);
    }

    #[test]
    fn tcp_probe_to_host_without_web_server_is_unreachable_fast() {
        let mut sc = build_scenario(&PoolPlan::scaled(40), 14);
        let v = sc.vantages[1].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[1].node);
        let target = sc
            .servers
            .iter()
            .find(|s| {
                s.profile.web.is_none()
                    && s.profile.availability == AvailabilityModel::AlwaysUp
                    && s.profile.special == SpecialBehaviour::None
            })
            .map(|s| s.addr)
            .expect("no-web server");
        let cfg = ProbeConfig::default();
        let t0 = sc.sim.now();
        let r = probe_tcp(&mut sc.sim, &v, &cap, target, true, &cfg);
        assert!(!r.reachable);
        assert_eq!(r.close_reason, Some(CloseReason::Reset));
        assert!(
            sc.sim.now().saturating_sub(t0) < Nanos::from_secs(5),
            "RST is fast"
        );
    }

    #[test]
    fn validation_passes_on_clean_path_for_both_ect_codepoints() {
        let mut sc = build_scenario(&PoolPlan::scaled(30), 21);
        let v = sc.vantages[2].handle.clone();
        let target = sc
            .servers
            .iter()
            .find(|s| {
                s.profile.special == SpecialBehaviour::None
                    && s.profile.availability == AvailabilityModel::AlwaysUp
                    && !sc.truth.bleached_servers.contains(&s.addr)
                    && !sc.truth.bleached_sometimes_servers.contains(&s.addr)
            })
            .map(|s| s.addr)
            .expect("clean server");
        let cfg = ValidationConfig {
            packets: 10,
            ..ValidationConfig::default()
        };
        for session in [Ecn::Ect0, Ecn::Ect1] {
            let outcome = probe_validation(&mut sc.sim, &v, target, session, true, &cfg);
            assert_eq!(outcome, ValidationOutcome::Capable, "session {session:?}");
        }
    }

    #[test]
    fn validation_fails_behind_an_always_bleacher() {
        let mut sc = build_scenario(&PoolPlan::scaled(60), 22);
        let v = sc.vantages[0].handle.clone();
        let target = sc
            .servers
            .iter()
            .find(|s| {
                sc.truth.bleached_servers.contains(&s.addr)
                    && s.profile.availability == AvailabilityModel::AlwaysUp
            })
            .map(|s| s.addr)
            .expect("bleached live server");
        let cfg = ValidationConfig {
            packets: 10,
            ..ValidationConfig::default()
        };
        let outcome = probe_validation(&mut sc.sim, &v, target, Ecn::Ect0, true, &cfg);
        assert_eq!(outcome, ValidationOutcome::FailedBleached);
    }

    #[test]
    fn ecn_off_server_answers_but_declines() {
        let mut sc = build_scenario(&PoolPlan::scaled(60), 15);
        let v = sc.vantages[3].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[3].node);
        let target = sc
            .servers
            .iter()
            .find(|s| {
                s.profile.web.as_ref().map(|w| w.ecn) == Some(ecn_stack::EcnMode::Off)
                    && s.profile.availability == AvailabilityModel::AlwaysUp
                    && s.profile.special == SpecialBehaviour::None
            })
            .map(|s| s.addr)
            .expect("non-ecn web server");
        let r = probe_tcp(&mut sc.sim, &v, &cap, target, true, &ProbeConfig::default());
        assert!(r.reachable);
        assert!(!r.negotiated_ecn);
        let flags = TcpFlags(r.syn_ack_flags.expect("flags"));
        assert!(!flags.contains(TcpFlags::ECE));
    }
}
