//! Allocation-regression gate for the probe hot loop.
//!
//! This test binary installs the counting global allocator and measures
//! the two per-unit costs the engine pays for every work unit, in their
//! warm steady state (pools filled, capture freelists populated):
//!
//! - `instantiate_unit` — stamping a live world from the blueprint
//!   skeleton. Pooling/`Arc`-sharing took this from 2634 to 564
//!   allocations per unit at this scale (the remainder is genuinely
//!   per-world state: node boxes, host stacks, services).
//! - `run_trace` — the probe inner loop. Buffer pooling, capture
//!   freelists, borrow-based verdict scans and no-clone polling took
//!   this from 176 to ~80 allocations per (server, trace) observation;
//!   canned HTTP responses, zero-copy DNS fast paths, shared TCP emit
//!   scratch and UDP sink sockets then took it to ~25 (the remainder
//!   is connection setup/teardown and response assembly).
//!
//! The budgets sit ~50% above the measured numbers: enough headroom for
//! allocator jitter across platforms, tight enough that reintroducing
//! per-packet `Vec` churn (owned `encode()`, capture copies, per-unit
//! `format!` labels…) fails immediately.

use ecn_bench::alloc::{count_allocations, CountingAlloc};
use ecn_core::{run_discovery, run_trace, run_trace_observed, CampaignConfig, UnitId};
use ecn_pool::{PoolPlan, WorldBlueprint};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Budget for stamping one unit world from the skeleton (measured: 654).
const INSTANTIATE_BUDGET: u64 = 900;

/// Budget per (server, trace) observation in the probe loop
/// (measured: ~25).
const PER_OBSERVATION_BUDGET: f64 = 40.0;

fn test_cfg() -> CampaignConfig {
    CampaignConfig {
        discovery_rounds: 30,
        traces_per_vantage: Some(1),
        run_traceroute: false,
        ..CampaignConfig::quick(11)
    }
}

#[test]
fn unit_instantiation_allocations_stay_within_budget() {
    let cfg = test_cfg();
    let plan = PoolPlan {
        churn_at: cfg.batch2_start,
        ..PoolPlan::scaled(40)
    };
    let bp = WorldBlueprint::build(&plan, cfg.seed);
    let _warm = bp.instantiate_unit(0, 0);
    let (_, allocs) = count_allocations(|| bp.instantiate_unit(0, 0));
    println!("instantiate_unit: {allocs} allocations");
    assert!(
        allocs < INSTANTIATE_BUDGET,
        "unit instantiation allocation regression: {allocs} (budget {INSTANTIATE_BUDGET})"
    );
}

#[test]
fn probe_loop_allocations_stay_within_budget() {
    let cfg = test_cfg();
    let (d, mut sc) = run_discovery(&PoolPlan::scaled(40), &cfg);

    // Warm-up trace fills the packet pool and capture freelists.
    let warm = run_trace(&mut sc, 4, 2, &d.targets, &cfg);

    let (rec, allocs) = count_allocations(|| run_trace(&mut sc, 4, 2, &d.targets, &cfg));
    assert_eq!(
        rec.outcomes.len(),
        warm.outcomes.len(),
        "counted trace probed a different target set"
    );
    let per_obs = allocs as f64 / rec.outcomes.len().max(1) as f64;
    println!(
        "run_trace: {allocs} allocations / {} observations = {per_obs:.1} per observation",
        rec.outcomes.len()
    );
    assert!(
        per_obs < PER_OBSERVATION_BUDGET,
        "probe hot-loop allocation regression: {per_obs:.1} allocs/observation \
         (budget {PER_OBSERVATION_BUDGET})"
    );
}

#[test]
fn noop_subscriber_adds_zero_allocations_to_the_probe_loop() {
    // The event layer's zero-cost contract, measured: with
    // `Subscriber = ()` the observed probe loop must allocate *exactly*
    // what the unobserved one does — `S::ENABLED` guards const-fold the
    // hooks away, they don't merely stay cheap.
    let cfg = test_cfg();
    // Two identically-seeded worlds: the shared RNG advances across
    // traces, so consecutive runs in *one* world see different loss
    // realizations (and alloc counts that differ by a handful). Running
    // plain and observed on twin worlds guarantees identical traffic,
    // which is exactly what the zero-cost claim is about.
    let (d, mut sc_plain) = run_discovery(&PoolPlan::scaled(40), &cfg);
    let (_, mut sc_obs) = run_discovery(&PoolPlan::scaled(40), &cfg);
    // several warm runs each: pools, freelists and per-host scratch
    // buffers keep growing for a couple of iterations, and this
    // assertion needs the exact steady state, not just the warm
    // ballpark the budget tests tolerate
    for _ in 0..3 {
        let _warm = run_trace(&mut sc_plain, 4, 2, &d.targets, &cfg);
        let _warm = run_trace(&mut sc_obs, 4, 2, &d.targets, &cfg);
    }
    let unit = UnitId {
        vantage: 4,
        chunk: 0,
    };
    let (_, plain) = count_allocations(|| run_trace(&mut sc_plain, 4, 2, &d.targets, &cfg));
    let (rec, observed) = count_allocations(|| {
        run_trace_observed(&mut sc_obs, 4, 2, &d.targets, &cfg, &mut (), unit)
    });
    assert!(!rec.outcomes.is_empty());
    println!("run_trace: {plain} allocs plain, {observed} observed with ()");
    assert_eq!(
        observed, plain,
        "Subscriber = () must compile to nothing in the probe loop"
    );
}

#[test]
fn disabled_validator_adds_zero_allocations_to_the_probe_loop() {
    // The validation pass gates on `packets > 0` alone. With it off —
    // every preset that predates the validator — the probe loop must
    // allocate *exactly* what it allocates with the other validation
    // knobs set: configuring the canary or the ECT(1) fraction costs
    // nothing until a scenario actually switches the pass on.
    let cfg_off = test_cfg();
    let mut cfg_knobs = test_cfg();
    cfg_knobs.validation.ce_canary = true;
    cfg_knobs.validation.ect1_per_1000 = 500;
    assert!(
        !cfg_knobs.validation.enabled(),
        "knobs alone must not enable the pass"
    );
    // twin worlds, same reasoning as the zero-cost subscriber test:
    // identical traffic, so any count difference is the validator's
    let (d, mut sc_off) = run_discovery(&PoolPlan::scaled(40), &cfg_off);
    let (_, mut sc_knobs) = run_discovery(&PoolPlan::scaled(40), &cfg_off);
    for _ in 0..3 {
        let _warm = run_trace(&mut sc_off, 4, 2, &d.targets, &cfg_off);
        let _warm = run_trace(&mut sc_knobs, 4, 2, &d.targets, &cfg_knobs);
    }
    let (rec, off) = count_allocations(|| run_trace(&mut sc_off, 4, 2, &d.targets, &cfg_off));
    let (_, knobs) = count_allocations(|| run_trace(&mut sc_knobs, 4, 2, &d.targets, &cfg_knobs));
    assert!(!rec.outcomes.is_empty());
    assert!(rec.outcomes.iter().all(|o| o.validation.is_none()));
    println!("run_trace: {off} allocs with validation off, {knobs} with knobs set");
    assert_eq!(
        off, knobs,
        "a disabled validator must add zero allocations per observation"
    );
}

/// Budget per (server, trace) observation for the *enabled* validation
/// pass, over and above the base probe loop (measured on twin worlds:
/// ~33 for a 10-packet train + CE canary, ≈3 per probe packet).
const VALIDATION_BUDGET: f64 = 50.0;

#[test]
fn enabled_validator_stays_within_its_allocation_budget() {
    // With the pass on (a 10-packet train + CE canary per server), the
    // extra per-observation allocations are the validation session's
    // setup/teardown — pin them so the train never grows per-packet
    // `Vec` churn.
    let cfg_off = test_cfg();
    let mut cfg_on = test_cfg();
    cfg_on.validation.packets = 10;
    let (d, mut sc_off) = run_discovery(&PoolPlan::scaled(40), &cfg_off);
    let (_, mut sc_on) = run_discovery(&PoolPlan::scaled(40), &cfg_off);
    for _ in 0..3 {
        let _warm = run_trace(&mut sc_off, 4, 2, &d.targets, &cfg_off);
        let _warm = run_trace(&mut sc_on, 4, 2, &d.targets, &cfg_on);
    }
    let (_, off) = count_allocations(|| run_trace(&mut sc_off, 4, 2, &d.targets, &cfg_off));
    let (rec, on) = count_allocations(|| run_trace(&mut sc_on, 4, 2, &d.targets, &cfg_on));
    assert!(rec.outcomes.iter().all(|o| o.validation.is_some()));
    let extra = on.saturating_sub(off) as f64 / rec.outcomes.len().max(1) as f64;
    println!(
        "run_trace: {off} allocs off, {on} on = {extra:.1} extra per observation \
         ({} observations)",
        rec.outcomes.len()
    );
    assert!(
        extra < VALIDATION_BUDGET,
        "validation-pass allocation regression: {extra:.1} extra allocs/observation \
         (budget {VALIDATION_BUDGET})"
    );
}
