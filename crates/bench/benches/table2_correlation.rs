//! Table 2: correlation between UDP-with-ECT unreachability and TCP ECN
//! negotiation failure — the weak-correlation / UDP-specific-filtering
//! finding of §4.4.

use ecn_bench::{paper_campaign, time_kernel};
use ecn_core::analysis::table2;

fn main() {
    let result = paper_campaign(false);
    let t2 = table2(&result.traces);
    println!("{}", t2.render());

    println!(
        "paper reference rows: Perkins 8/3, McQuistin 160/20, UGla wired 10/2, UGla w'less 43/4, EC2 10..16 / 2..5"
    );

    time_kernel("table2 aggregation (210 traces)", 20, || {
        table2(&result.traces)
    });
}
