//! Figure 3: per-server differential reachability per location — the
//! "same handful of servers is ECT-unreachable from everywhere" result.

use ecn_bench::{paper_campaign, time_kernel};
use ecn_core::analysis::figure3;

fn main() {
    let result = paper_campaign(false);
    let fig = figure3(&result.traces);
    println!("{}", fig.render());

    // audit against the planted ground truth
    let planted: usize = result.truth.ect_blocked.len() + result.truth.ect_blocked_flaky.len();
    println!(
        "audit: planted {} ECT-blocking middleboxes; measured {} persistent blackholes (flaky ECMP servers appear as partial spikes)",
        planted,
        fig.persistent_a.len()
    );
    let found: usize = fig
        .persistent_a
        .iter()
        .filter(|a| result.truth.ect_blocked.contains(a))
        .count();
    println!(
        "audit: {found}/{} persistent findings are planted always-blocked servers",
        fig.persistent_a.len()
    );

    time_kernel(
        "figure3 aggregation (210 traces x 2500 servers)",
        10,
        || figure3(&result.traces),
    );
}
