//! Megapool scaling bench: drive the 10⁵-server `scenarios/megapool.toml`
//! campaign through the engine at several `--processes` counts and record
//! servers/sec, per-process peak RSS, and merge depth into the `megapool`
//! section of `BENCH_campaign.json`.
//!
//! Each configuration runs in a **spawned copy of this bench binary**
//! (hidden `__measure` argv), because peak RSS is read from `VmHWM` — a
//! per-process high-water mark that never comes back down. Measuring two
//! configurations in one process would let the first run's mark mask the
//! second's. The spawned child is also what the engine's worker processes
//! re-invoke (`ecn_core::maybe_worker` hook at the top of `main`), so the
//! whole multi-process pipeline runs exactly as the CLI does.
//!
//! Scale knobs (env): `ECNUDP_BENCH_MEGAPOOL_SCENARIO` (file name under
//! `scenarios/`, default `megapool.toml`; use `megapool-smoke.toml` for a
//! CI-sized run), `ECNUDP_BENCH_MEGAPOOL_PROCESSES` (comma list,
//! default `1,4`).

use ecn_core::{campaign_config, engine_config, run_engine, EngineConfig};
use ecn_pool::ScenarioSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Instant;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root")
        .to_path_buf()
}

fn load_spec(scenario: &str) -> ScenarioSpec {
    let path = workspace_root().join("scenarios").join(scenario);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Hidden per-configuration child: run one campaign, print a flat JSON
/// line with the gauges, exit. (`argv: __measure <processes> <scenario>`.)
fn run_measure(processes: usize, scenario: &str) -> ExitCode {
    let spec = load_spec(scenario);
    let eng = EngineConfig {
        processes,
        ..engine_config(&spec)
    };
    let t0 = Instant::now();
    let run = run_engine(&spec.plan(), &campaign_config(&spec), &eng);
    let wall_s = t0.elapsed().as_secs_f64();
    println!(
        "{{\"servers\": {}, \"targets\": {}, \"units\": {}, \"shards\": {}, \
         \"merge_depth\": {}, \"wall_s\": {:.1}, \"servers_per_sec\": {:.0}, \
         \"peak_rss_kb\": {}}}",
        spec.population.servers,
        run.result.targets.len(),
        run.units,
        run.shards,
        run.merge_depth,
        wall_s,
        spec.population.servers as f64 / wall_s,
        run.peak_rss_kb,
    );
    ExitCode::SUCCESS
}

fn spawn_measure(processes: usize, scenario: &str) -> String {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .arg("__measure")
        .arg(processes.to_string())
        .arg(scenario)
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "measurement child (processes={processes}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 gauges");
    stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .expect("child prints a gauge line")
        .to_string()
}

fn main() -> ExitCode {
    // engine worker processes re-invoke this binary
    if let Some(code) = ecn_core::maybe_worker() {
        return code;
    }
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("__measure") {
        let processes: usize = argv[2].parse().expect("processes");
        return run_measure(processes, &argv[3]);
    }

    let scenario =
        std::env::var("ECNUDP_BENCH_MEGAPOOL_SCENARIO").unwrap_or_else(|_| "megapool.toml".into());
    let processes: Vec<usize> = std::env::var("ECNUDP_BENCH_MEGAPOOL_PROCESSES")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .map(|p| p.trim().parse().expect("process count"))
        .collect();

    println!("[megapool] scenario {scenario}, process counts {processes:?}");
    let mut rows = Vec::new();
    for &p in &processes {
        let gauges = spawn_measure(p, &scenario);
        println!("[megapool] processes={p}: {gauges}");
        rows.push((p, gauges));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    json.push_str("  \"by_processes\": {\n");
    for (i, (p, gauges)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{p}\": {gauges}{comma}\n"));
    }
    json.push_str("  }\n}");
    ecn_bench::update_bench_json(
        &workspace_root().join("BENCH_campaign.json"),
        "megapool",
        &json,
    );
    println!("[megapool] scaling table -> BENCH_campaign.json");
    ExitCode::SUCCESS
}
