//! Figure 5: web-server reachability over TCP and ECN negotiation success
//! (paper: 1334 reachable, 1095 = 82.0% negotiate).

use ecn_bench::{paper_campaign, time_kernel};
use ecn_core::analysis::figure5;

fn main() {
    let result = paper_campaign(false);
    let fig = figure5(&result.traces);
    println!("{}", fig.render());

    println!(
        "audit: planted {} web servers of which {} ECN-capable ({:.1}%)",
        result.truth.web_server_count,
        result.truth.web_ecn_on_count,
        100.0 * result.truth.web_ecn_on_count as f64 / result.truth.web_server_count.max(1) as f64,
    );

    time_kernel("figure5 aggregation (210 traces)", 50, || {
        figure5(&result.traces)
    });
}
