//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Retry budget** — the 5×1 s retry schedule vs 0/1/3/8 retries: how
//!    much false unreachability each budget leaves on a bursty-lossy path.
//! 2. **ECT(0) vs ECT(1)** — the paper marks probes ECT(0) "to match TCP
//!    practice"; against capability-based middleboxes the codepoints are
//!    interchangeable, and this ablation verifies the model agrees.
//! 3. **Burst vs independent loss** — Gilbert–Elliott vs Bernoulli at the
//!    same mean loss: the probability that one burst defeats a whole probe
//!    session (the paper's transient-unreachability mechanism).
//! 4. **DropTail vs RED+ECN** — why the measured paths showed no CE
//!    (uncongested), yet ECN matters at a congested bottleneck.

use ecn_bench::BENCH_SEED;
use ecn_core::{probe_udp, ProbeConfig};
use ecn_netsim::{
    derive_rng, LinkProps, LossModel, LossProcess, Nanos, QueueDisc, RouteEntry, Router, Sim,
};
use ecn_pool::{build_scenario, PoolPlan, SpecialBehaviour};
use ecn_stack::AvailabilityModel;
use ecn_wire::{Datagram, Ecn, IpProto, Ipv4Header};
use std::net::Ipv4Addr;

fn main() {
    retry_budget();
    ect0_vs_ect1();
    burst_vs_independent();
    droptail_vs_red();
}

/// Ablation 1: retries vs false unreachability through the (bursty) UGla
/// wireless vantage.
fn retry_budget() {
    println!("=== ablation 1: UDP retry budget (bursty wireless path) ===");
    println!(
        "{:<10} {:>14} {:>12}",
        "retries", "unreachable", "false rate"
    );
    for retries in [0u32, 1, 3, 5, 8] {
        let mut sc = build_scenario(&PoolPlan::scaled(300), BENCH_SEED);
        let vantage = 3; // UGla wireless
        let handle = sc.vantages[vantage].handle.clone();
        let cap = sc.sim.attach_capture(sc.vantages[vantage].node);
        let cfg = ProbeConfig {
            udp_retries: retries,
            ..ProbeConfig::default()
        };
        // probe only servers that are genuinely up and unfiltered: every
        // "unreachable" verdict is a false one caused by loss
        let targets: Vec<Ipv4Addr> = sc
            .servers
            .iter()
            .filter(|s| {
                s.profile.availability == AvailabilityModel::AlwaysUp
                    && s.profile.special == SpecialBehaviour::None
            })
            .map(|s| s.addr)
            .collect();
        let mut unreachable = 0usize;
        for &t in &targets {
            cap.lock().clear();
            if !probe_udp(&mut sc.sim, &handle, &cap, t, Ecn::NotEct, &cfg).reachable {
                unreachable += 1;
            }
        }
        println!(
            "{:<10} {:>10}/{:<4} {:>11.2}%",
            retries,
            unreachable,
            targets.len(),
            100.0 * unreachable as f64 / targets.len() as f64
        );
    }
    println!();
}

/// Ablation 2: probe the planted ECT-dropping middlebox with every
/// codepoint.
fn ect0_vs_ect1() {
    println!("=== ablation 2: ECT(0) vs ECT(1) against an ECT-dropping middlebox ===");
    let mut sc = build_scenario(&PoolPlan::scaled(120), BENCH_SEED);
    let blocked = *sc.truth.ect_blocked.first().expect("planted middlebox");
    let healthy = sc
        .servers
        .iter()
        .find(|s| {
            s.profile.special == SpecialBehaviour::None
                && s.profile.availability == AvailabilityModel::AlwaysUp
        })
        .map(|s| s.addr)
        .expect("healthy server");
    let handle = sc.vantages[6].handle.clone();
    let cap = sc.sim.attach_capture(sc.vantages[6].node);
    let cfg = ProbeConfig::default();
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "target", "not-ECT", "ECT(0)", "ECT(1)"
    );
    for (name, addr) in [("filtered server", blocked), ("healthy server", healthy)] {
        let mut row = Vec::new();
        for ecn in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1] {
            cap.lock().clear();
            let r = probe_udp(&mut sc.sim, &handle, &cap, addr, ecn, &cfg);
            row.push(if r.reachable { "yes" } else { "NO" });
        }
        println!("{:<22} {:>9} {:>9} {:>9}", name, row[0], row[1], row[2]);
    }
    println!("(capability-based filters treat both ECT codepoints alike — the paper's choice of ECT(0) is about TCP convention, not filtering)\n");
}

/// Ablation 3: P(all 6 session attempts lost) under equal-mean loss models.
fn burst_vs_independent() {
    println!("=== ablation 3: burst (Gilbert–Elliott) vs independent (Bernoulli) loss ===");
    println!(
        "{:<8} {:>22} {:>22}",
        "mean", "P(session fails) GE", "P(session fails) Bern"
    );
    for mean in [0.01f64, 0.03, 0.06, 0.12] {
        let trials = 60_000u64;
        let count_fail = |model: LossModel, salt: u64| -> f64 {
            let mut proc = LossProcess::new(model);
            let mut rng = derive_rng(BENCH_SEED ^ salt, "ablation3");
            let mut fails = 0u64;
            for t in 0..trials {
                let base = Nanos::from_secs(t * 40);
                let all =
                    (0..6).all(|k| proc.should_drop(base + Nanos::from_secs(k), false, &mut rng));
                fails += u64::from(all);
            }
            fails as f64 / trials as f64
        };
        let ge = count_fail(LossModel::congested_access(mean), 1);
        let bern = count_fail(LossModel::Bernoulli { p: mean }, 2);
        println!("{:<8} {:>21.4}% {:>21.6}%", mean, 100.0 * ge, 100.0 * bern);
    }
    println!("(equal mean loss, utterly different session-failure behaviour — the paper's transient-unreachability mechanism)\n");
}

/// Ablation 4: DropTail vs RED+ECN for an ECT-marked flow through a
/// congested bottleneck.
fn droptail_vs_red() {
    println!("=== ablation 4: DropTail vs RED+ECN at a congested bottleneck ===");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "queue", "sent", "delivered", "lost", "CE"
    );
    for (name, queue) in [
        (
            "DropTail",
            QueueDisc::DropTail {
                limit_bytes: 30_000,
            },
        ),
        (
            "RED+ECN",
            QueueDisc::Red {
                min_th_bytes: 6_000,
                max_th_bytes: 24_000,
                max_p: 0.2,
                weight: 0.1,
                ecn: true,
                limit_bytes: 60_000,
            },
        ),
    ] {
        let mut sim = Sim::new(BENCH_SEED);
        let a = sim.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
        let b = sim.add_host("b", Ipv4Addr::new(192, 0, 2, 1));
        let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 1));
        let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 2));
        sim.attach_host(a, r1, LinkProps::clean(Nanos::from_millis(1)));
        sim.attach_host(b, r2, LinkProps::clean(Nanos::from_millis(1)));
        let (l12, l21) = sim.add_duplex(
            r1,
            r2,
            LinkProps::bottleneck(Nanos::from_millis(10), 2_000_000, queue),
        );
        sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
        sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
        let cap = sim.attach_capture(b);
        // offer 3 Mbit/s of ECT traffic for 5 s into the 2 Mbit/s link
        let sent = 1560u32;
        for i in 0..sent {
            let at = Nanos(u64::from(i) * 3_200_000); // 1200B @ 3 Mbit/s
            sim.run_until(at);
            let mut h = Ipv4Header::probe(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                IpProto::Udp,
                Ecn::Ect0,
            );
            h.identification = i as u16;
            let seg = ecn_wire::udp::udp_segment(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                5000,
                5001,
                &vec![0u8; 1160],
            );
            sim.send_from(a, Datagram::new(h, &seg));
        }
        sim.run_to_idle();
        let cap = cap.lock();
        let delivered = cap.len() as u32;
        let ce = cap
            .packets()
            .iter()
            .filter_map(|p| p.datagram())
            .filter(|d| d.ecn() == Ecn::Ce)
            .count();
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            name,
            sent,
            delivered,
            sent - delivered,
            ce
        );
    }
    println!("(why the idle measured paths showed zero CE, and why ECN pays off when queues actually fill)\n");
}
