//! Probe hot-loop bench: throughput and allocation discipline of the
//! (instantiate → probe → reduce) inner loop on a single shard.
//!
//! Reports, per `BENCH_campaign.json` section `probe_hot_loop`:
//! - `observations_per_sec` — (server, trace) observations absorbed per
//!   wall second, single shard (so scheduler parallelism can't flatter
//!   the inner loop);
//! - `instantiate_ms_per_unit` — what stamping one unit world from the
//!   blueprint skeleton costs;
//! - `allocations_per_observation` — only when built with
//!   `--features alloc-count`, which installs the counting global
//!   allocator (left out of default runs so the gauge can't perturb the
//!   wall-clock numbers).
//!
//! The measured run also re-executes through the observed entry point
//! with the no-op subscriber (`Subscriber = ()`): `S::ENABLED = false`
//! const-folds every event hook away, so the two walls must match.
//! `ECNUDP_BENCH_ENFORCE=1` fails the run if the no-op-subscriber
//! overhead exceeds 10% (allocation *equality* is pinned separately in
//! `tests/alloc_regression.rs`).
//!
//! A second section, `flat_event_loop`, tracks the batched flat event
//! loop (timer wheel + dense-index state + tunnelled forwarding) against
//! the PR-4 heap-based loop: before/after observations/sec,
//! ns/packet-event (wall over `Sim::events_dispatched`), events and
//! allocations per observation. Because CI runners differ, the
//! comparison is *hardware-normalised*: a fixed scalar calibration
//! kernel is timed alongside the campaign, the PR-4 baseline is scaled
//! by the ratio of calibration scores, and `ECNUDP_BENCH_ENFORCE=1`
//! fails the run if the new loop delivers less than 1.8x the normalised
//! baseline.
//!
//! Scale knobs (env): `ECNUDP_BENCH_SERVERS` (default 150),
//! `ECNUDP_BENCH_TRACES` (per vantage, default 2).

use ecn_bench::BENCH_SEED;
use ecn_core::{
    run_discovery, run_engine, run_engine_observed, run_trace, CampaignConfig, EngineConfig,
};
use ecn_pool::PoolPlan;
use std::time::{Duration, Instant};

/// PR-4 `probe_hot_loop` baseline: the committed BENCH_campaign.json
/// figures before the flat event loop landed, re-anchored with the
/// calibration kernel on the host that recorded them.
const PR4_OBS_PER_SEC: f64 = 19_424.0;
/// ns/packet-event the PR-4 loop measured at this scale (the "~140 ns
/// floor" the flat event loop was built to break).
const PR4_NS_PER_EVENT: f64 = 140.0;
/// Probe-loop allocations/observation before the batch paths landed.
const PR4_ALLOCS_PER_OBS: f64 = 80.0;
/// Dispatched events/observation under the PR-4 loop: every hop of every
/// packet was its own heap pop (the tunnelling fast path collapses
/// transparent multi-hop chains into one arrival).
const PR4_EVENTS_PER_OBS: f64 = 285.0;
/// Calibration-kernel score (kilo-iterations/sec) on the baseline host —
/// the container that recorded the 19,424 obs/s PR-4 figure (stable to
/// ~1% across repeated runs there).
const PR4_CALIBRATION_KOPS: f64 = 34_100.0;
/// The enforced floor: normalised speedup vs the PR-4 baseline.
const ENFORCE_MIN_RATIO: f64 = 1.8;

/// A fixed scalar kernel (checksum-shaped: 8-byte adds over a 1.5 KB
/// buffer plus an avalanche mix) timed for ~80 ms. Scores scale with the
/// single-core integer throughput the simulator's hot loop depends on,
/// giving a unit-free knob to transport the PR-4 baseline across hosts.
fn calibration_kops() -> f64 {
    let mut buf = [0u8; 1536];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = i as u8;
    }
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    let t0 = Instant::now();
    let mut iters = 0u64;
    loop {
        for _ in 0..256 {
            let mut s = 0u64;
            for ch in buf.chunks_exact(8) {
                s = s.wrapping_add(u64::from_le_bytes(ch.try_into().unwrap()));
            }
            acc ^= s.rotate_left(17).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            // Feed the digest back into the buffer: the next pass depends
            // on this one through memory, so the sum cannot be folded to
            // a constant and the loop actually exercises load/ALU ports.
            let off = (acc as usize) % (buf.len() - 8);
            buf[off..off + 8].copy_from_slice(&acc.to_le_bytes());
            iters += 1;
        }
        if t0.elapsed() >= Duration::from_millis(80) {
            break;
        }
    }
    std::hint::black_box(acc);
    iters as f64 / t0.elapsed().as_secs_f64() / 1000.0
}

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ecn_bench::alloc::CountingAlloc = ecn_bench::alloc::CountingAlloc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let servers = env_usize("ECNUDP_BENCH_SERVERS", 150);
    let traces_per_vantage = env_usize("ECNUDP_BENCH_TRACES", 2);
    let plan = PoolPlan::scaled(servers);
    let cfg = CampaignConfig {
        discovery_rounds: 40,
        traces_per_vantage: Some(traces_per_vantage),
        run_traceroute: false,
        ..CampaignConfig::quick(BENCH_SEED)
    };
    let eng = EngineConfig::with_shards(1);

    println!(
        "[probe_hot_loop] {servers} servers, {traces_per_vantage} traces/vantage, 1 shard{}",
        if cfg!(feature = "alloc-count") {
            ", counting allocations"
        } else {
            ""
        }
    );

    // Warm-up: fault in code paths and allocator arenas.
    std::hint::black_box(run_engine(&plan, &cfg, &eng));

    let t0 = Instant::now();
    let (run, allocs) = ecn_bench::alloc::count_allocations(|| run_engine(&plan, &cfg, &eng));
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let logical_traces = run.result.aggregates.trace_stats.len();
    let observations = logical_traces * run.result.targets.len();
    let obs_per_sec = observations as f64 / (wall_ms / 1000.0);
    let inst_ms_per_unit = run.timing.instantiate.as_secs_f64() * 1000.0 / run.units.max(1) as f64;

    println!(
        "[probe_hot_loop] {observations} observations in {wall_ms:.0} ms -> {obs_per_sec:.0} obs/s ({})",
        run.timing.render()
    );
    println!(
        "[probe_hot_loop] instantiate: {inst_ms_per_unit:.3} ms/unit over {} units",
        run.units
    );

    // Identical work through the observed entry point, no-op subscriber:
    // the zero-cost contract says this wall must match the plain one.
    let t1 = Instant::now();
    let (observed_run, ()) = run_engine_observed(&plan, &cfg, &eng, ());
    let observed_ms = t1.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        run.result.aggregates, observed_run.result.aggregates,
        "Subscriber = () changed the measurement"
    );
    let noop_overhead_pct = (observed_ms / wall_ms - 1.0) * 100.0;
    println!(
        "[probe_hot_loop] no-op subscriber: {observed_ms:.0} ms observed vs {wall_ms:.0} ms plain \
         -> {noop_overhead_pct:+.1}% overhead"
    );

    let mut json = format!(
        "{{\n  \"servers\": {servers},\n  \"traces_per_vantage\": {traces_per_vantage},\n  \"observations\": {observations},\n  \"wall_ms\": {wall_ms:.1},\n  \"observations_per_sec\": {obs_per_sec:.0},\n  \"instantiate_ms_per_unit\": {inst_ms_per_unit:.3},\n  \"noop_subscriber_overhead_pct\": {noop_overhead_pct:.1},\n  \"alloc_counting\": {}",
        cfg!(feature = "alloc-count"),
    );
    if cfg!(feature = "alloc-count") {
        let per_obs = allocs as f64 / observations.max(1) as f64;
        println!(
            "[probe_hot_loop] {allocs} allocations for {observations} observations -> {per_obs:.2} allocs/observation"
        );
        json.push_str(&format!(
            ",\n  \"allocations\": {allocs},\n  \"allocations_per_observation\": {per_obs:.2}"
        ));
    }
    json.push_str("\n}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    ecn_bench::update_bench_json(&out, "probe_hot_loop", &json);
    println!("[probe_hot_loop] hot-loop table -> BENCH_campaign.json");

    // ---- flat_event_loop: before/after against the PR-4 heap loop ----

    // ns/packet-event measured directly: one warm trace, then a timed
    // trace divided by the simulator's own dispatch counter.
    let (d, mut sc) = run_discovery(&plan, &cfg);
    let _ = run_trace(&mut sc, 0, 1, &d.targets, &cfg);
    let e0 = sc.sim.events_dispatched();
    let t2 = Instant::now();
    let rec = run_trace(&mut sc, 0, 2, &d.targets, &cfg);
    let trace_ns = t2.elapsed().as_nanos() as f64;
    let events = sc.sim.events_dispatched() - e0;
    let trace_obs = rec.outcomes.len() as u64;
    let ns_per_event = trace_ns / events.max(1) as f64;
    let events_per_obs = events as f64 / trace_obs.max(1) as f64;

    // The plain and observed runs above are the identical workload, so
    // the faster of the two is a free best-of-2 against scheduler noise.
    let best_obs_per_sec = observations as f64 / (wall_ms.min(observed_ms) / 1000.0);

    // Calibrate twice (bracketing the campaign timings above) and keep
    // the better score — same best-of-N defence the obs/s figure gets.
    let calib = calibration_kops().max(calibration_kops());
    let normalised_baseline = PR4_OBS_PER_SEC * (calib / PR4_CALIBRATION_KOPS);
    let speedup = best_obs_per_sec / normalised_baseline;

    println!(
        "[flat_event_loop] {events} events / {trace_obs} obs -> {events_per_obs:.1} events/obs, \
         {ns_per_event:.1} ns/packet-event"
    );
    println!(
        "[flat_event_loop] calibration {calib:.0} kops (baseline host {PR4_CALIBRATION_KOPS:.0}) \
         -> normalised PR-4 baseline {normalised_baseline:.0} obs/s; this loop {best_obs_per_sec:.0} \
         obs/s = {speedup:.2}x"
    );

    let mut flat = format!(
        "{{\n  \"before\": {{\n    \"observations_per_sec\": {PR4_OBS_PER_SEC:.0},\n    \"ns_per_packet_event\": {PR4_NS_PER_EVENT:.0},\n    \"events_per_observation\": {PR4_EVENTS_PER_OBS:.0},\n    \"allocations_per_observation\": {PR4_ALLOCS_PER_OBS:.0},\n    \"calibration_kops\": {PR4_CALIBRATION_KOPS:.0}\n  }},\n  \"after\": {{\n    \"observations_per_sec\": {best_obs_per_sec:.0},\n    \"ns_per_packet_event\": {ns_per_event:.1},\n    \"events_per_observation\": {events_per_obs:.1},\n    \"calibration_kops\": {calib:.0}"
    );
    if cfg!(feature = "alloc-count") {
        flat.push_str(&format!(
            ",\n    \"allocations_per_observation\": {:.2}",
            allocs as f64 / observations.max(1) as f64
        ));
    }
    flat.push_str(&format!(
        "\n  }},\n  \"normalised_speedup\": {speedup:.2},\n  \"enforced_min_speedup\": {ENFORCE_MIN_RATIO}\n}}"
    ));
    ecn_bench::update_bench_json(&out, "flat_event_loop", &flat);
    println!("[flat_event_loop] before/after table -> BENCH_campaign.json");

    if std::env::var("ECNUDP_BENCH_ENFORCE").as_deref() == Ok("1") {
        if noop_overhead_pct > 10.0 {
            eprintln!(
                "[probe_hot_loop] FAIL: no-op subscriber cost {noop_overhead_pct:.1}% \
                 (the event hooks must compile away; budget 10% covers runner jitter)"
            );
            std::process::exit(1);
        }
        if speedup < ENFORCE_MIN_RATIO {
            eprintln!(
                "[flat_event_loop] FAIL: {best_obs_per_sec:.0} obs/s is {speedup:.2}x the \
                 hardware-normalised PR-4 baseline ({normalised_baseline:.0} obs/s); the flat \
                 event loop must hold >= {ENFORCE_MIN_RATIO}x"
            );
            std::process::exit(1);
        }
    }
}
