//! Probe hot-loop bench: throughput and allocation discipline of the
//! (instantiate → probe → reduce) inner loop on a single shard.
//!
//! Reports, per `BENCH_campaign.json` section `probe_hot_loop`:
//! - `observations_per_sec` — (server, trace) observations absorbed per
//!   wall second, single shard (so scheduler parallelism can't flatter
//!   the inner loop);
//! - `instantiate_ms_per_unit` — what stamping one unit world from the
//!   blueprint skeleton costs;
//! - `allocations_per_observation` — only when built with
//!   `--features alloc-count`, which installs the counting global
//!   allocator (left out of default runs so the gauge can't perturb the
//!   wall-clock numbers).
//!
//! The measured run also re-executes through the observed entry point
//! with the no-op subscriber (`Subscriber = ()`): `S::ENABLED = false`
//! const-folds every event hook away, so the two walls must match.
//! `ECNUDP_BENCH_ENFORCE=1` fails the run if the no-op-subscriber
//! overhead exceeds 10% (allocation *equality* is pinned separately in
//! `tests/alloc_regression.rs`).
//!
//! Scale knobs (env): `ECNUDP_BENCH_SERVERS` (default 150),
//! `ECNUDP_BENCH_TRACES` (per vantage, default 2).

use ecn_bench::BENCH_SEED;
use ecn_core::{run_engine, run_engine_observed, CampaignConfig, EngineConfig};
use ecn_pool::PoolPlan;
use std::time::Instant;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ecn_bench::alloc::CountingAlloc = ecn_bench::alloc::CountingAlloc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let servers = env_usize("ECNUDP_BENCH_SERVERS", 150);
    let traces_per_vantage = env_usize("ECNUDP_BENCH_TRACES", 2);
    let plan = PoolPlan::scaled(servers);
    let cfg = CampaignConfig {
        discovery_rounds: 40,
        traces_per_vantage: Some(traces_per_vantage),
        run_traceroute: false,
        ..CampaignConfig::quick(BENCH_SEED)
    };
    let eng = EngineConfig::with_shards(1);

    println!(
        "[probe_hot_loop] {servers} servers, {traces_per_vantage} traces/vantage, 1 shard{}",
        if cfg!(feature = "alloc-count") {
            ", counting allocations"
        } else {
            ""
        }
    );

    // Warm-up: fault in code paths and allocator arenas.
    std::hint::black_box(run_engine(&plan, &cfg, &eng));

    let t0 = Instant::now();
    let (run, allocs) = ecn_bench::alloc::count_allocations(|| run_engine(&plan, &cfg, &eng));
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let logical_traces = run.result.aggregates.trace_stats.len();
    let observations = logical_traces * run.result.targets.len();
    let obs_per_sec = observations as f64 / (wall_ms / 1000.0);
    let inst_ms_per_unit = run.timing.instantiate.as_secs_f64() * 1000.0 / run.units.max(1) as f64;

    println!(
        "[probe_hot_loop] {observations} observations in {wall_ms:.0} ms -> {obs_per_sec:.0} obs/s ({})",
        run.timing.render()
    );
    println!(
        "[probe_hot_loop] instantiate: {inst_ms_per_unit:.3} ms/unit over {} units",
        run.units
    );

    // Identical work through the observed entry point, no-op subscriber:
    // the zero-cost contract says this wall must match the plain one.
    let t1 = Instant::now();
    let (observed_run, ()) = run_engine_observed(&plan, &cfg, &eng, ());
    let observed_ms = t1.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        run.result.aggregates, observed_run.result.aggregates,
        "Subscriber = () changed the measurement"
    );
    let noop_overhead_pct = (observed_ms / wall_ms - 1.0) * 100.0;
    println!(
        "[probe_hot_loop] no-op subscriber: {observed_ms:.0} ms observed vs {wall_ms:.0} ms plain \
         -> {noop_overhead_pct:+.1}% overhead"
    );

    let mut json = format!(
        "{{\n  \"servers\": {servers},\n  \"traces_per_vantage\": {traces_per_vantage},\n  \"observations\": {observations},\n  \"wall_ms\": {wall_ms:.1},\n  \"observations_per_sec\": {obs_per_sec:.0},\n  \"instantiate_ms_per_unit\": {inst_ms_per_unit:.3},\n  \"noop_subscriber_overhead_pct\": {noop_overhead_pct:.1},\n  \"alloc_counting\": {}",
        cfg!(feature = "alloc-count"),
    );
    if cfg!(feature = "alloc-count") {
        let per_obs = allocs as f64 / observations.max(1) as f64;
        println!(
            "[probe_hot_loop] {allocs} allocations for {observations} observations -> {per_obs:.2} allocs/observation"
        );
        json.push_str(&format!(
            ",\n  \"allocations\": {allocs},\n  \"allocations_per_observation\": {per_obs:.2}"
        ));
    }
    json.push_str("\n}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    ecn_bench::update_bench_json(&out, "probe_hot_loop", &json);
    println!("[probe_hot_loop] hot-loop table -> BENCH_campaign.json");

    if std::env::var("ECNUDP_BENCH_ENFORCE").as_deref() == Ok("1") && noop_overhead_pct > 10.0 {
        eprintln!(
            "[probe_hot_loop] FAIL: no-op subscriber cost {noop_overhead_pct:.1}% \
             (the event hooks must compile away; budget 10% covers runner jitter)"
        );
        std::process::exit(1);
    }
}
