//! Criterion micro-benchmarks of the hot paths under the campaign:
//! codec encode/decode, checksums, LPM lookups, the event loop, and the
//! TCP handshake state machine.

use criterion::{criterion_group, criterion_main, Criterion};
use ecn_netsim::{Ipv4Prefix, LinkProps, Nanos, PrefixMap, RouteEntry, Router, Sim};
use ecn_stack::{EcnMode, TcpConn};
use ecn_wire::{internet_checksum, Datagram, Ecn, IpProto, Ipv4Header, NtpPacket, NtpTimestamp};
use std::net::Ipv4Addr;

fn bench_wire(c: &mut Criterion) {
    let h = Ipv4Header::probe(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(192, 0, 2, 1),
        IpProto::Udp,
        Ecn::Ect0,
    );
    let d = Datagram::new(h, &[0u8; 48]);
    c.bench_function("ipv4_header_decode", |b| {
        b.iter(|| Ipv4Header::decode(std::hint::black_box(d.as_bytes())))
    });
    c.bench_function("datagram_set_ecn", |b| {
        let mut d = d.clone();
        b.iter(|| {
            d.set_ecn(Ecn::NotEct);
            d.set_ecn(Ecn::Ect0);
        })
    });
    let buf = vec![0xabu8; 1500];
    c.bench_function("internet_checksum_1500B", |b| {
        b.iter(|| internet_checksum(std::hint::black_box(&buf)))
    });
    let ntp = NtpPacket::client_request(NtpTimestamp::from_nanos(1_000_000_000));
    let wire = ntp.encode();
    c.bench_function("ntp_roundtrip", |b| {
        b.iter(|| NtpPacket::decode(std::hint::black_box(&wire)).map(|p| p.encode()))
    });
}

fn bench_lpm(c: &mut Criterion) {
    let mut map: PrefixMap<u32> = PrefixMap::new();
    // a T1-sized table: ~1200 /20s plus a default
    for k in 0..1200u32 {
        let addr = Ipv4Addr::from(0x8000_0000 | (k << 12));
        map.insert(Ipv4Prefix::new(addr, 20), k);
    }
    map.insert("0.0.0.0/0".parse().unwrap(), u32::MAX);
    let probe = Ipv4Addr::from(0x8000_0000 | (777 << 12) | 2048);
    c.bench_function("lpm_lookup_1200_routes", |b| {
        b.iter(|| map.lookup(std::hint::black_box(probe)))
    });
}

fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("sim_hop_throughput_1000pkts_4hops", |b| {
        b.iter_with_setup(
            || {
                let mut sim = Sim::new(1);
                let a = sim.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
                let z = sim.add_host("z", Ipv4Addr::new(192, 0, 2, 1));
                let r1 = sim.add_router(Router::new("r1", Ipv4Addr::new(10, 0, 0, 254), 1));
                let r2 = sim.add_router(Router::new("r2", Ipv4Addr::new(192, 0, 2, 254), 2));
                sim.attach_host(a, r1, LinkProps::clean(Nanos::from_millis(1)));
                sim.attach_host(z, r2, LinkProps::clean(Nanos::from_millis(1)));
                let (l12, l21) = sim.add_duplex(r1, r2, LinkProps::clean(Nanos::from_millis(5)));
                sim.route(r1, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l12));
                sim.route(r2, "0.0.0.0/0".parse().unwrap(), RouteEntry::Link(l21));
                let h = Ipv4Header::probe(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(192, 0, 2, 1),
                    IpProto::Udp,
                    Ecn::Ect0,
                );
                let seg = ecn_wire::udp::udp_segment(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(192, 0, 2, 1),
                    40000,
                    123,
                    &[0u8; 48],
                );
                for _ in 0..1000 {
                    sim.send_from(a, Datagram::new(h, &seg));
                }
                sim
            },
            |mut sim| {
                sim.run_to_idle();
                sim.stats.delivered
            },
        )
    });
}

fn bench_tcp_handshake(c: &mut Criterion) {
    const CL: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
    const SV: (Ipv4Addr, u16) = (Ipv4Addr::new(192, 0, 2, 80), 80);
    c.bench_function("tcp_ecn_handshake_state_machine", |b| {
        b.iter(|| {
            let (mut client, syn) = TcpConn::connect(CL, SV, 1000, EcnMode::On);
            let (mut server, syn_ack) = TcpConn::accept(SV, CL, 9000, &syn.header, EcnMode::On);
            let acks = client.on_segment(&syn_ack.header, &[], syn_ack.ip_ecn);
            for e in &acks {
                server.on_segment(&e.header, &e.payload, e.ip_ecn);
            }
            (client.ecn_negotiated, server.ecn_negotiated)
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_wire, bench_lpm, bench_event_loop, bench_tcp_handshake
);
criterion_main!(micro);
