//! Campaign engine sharding sweep: wall-clock per shard count for the
//! blueprint-backed work-stealing engine, against a faithful
//! reconstruction of the old per-vantage-thread runner (one **full**
//! seeded world rebuild per vantage thread — the cost the blueprint
//! split removed).
//!
//! Emits `BENCH_campaign.json` (wall-clock per configuration) so CI can
//! track the perf trajectory run over run.
//!
//! Regression gate: with `ECNUDP_BENCH_ENFORCE=1`, the run fails if
//! single-shard throughput regressed more than 20% against the committed
//! `BENCH_campaign.json`. The comparison uses the *hardware-normalised*
//! ratio `legacy_per_vantage_thread_ms / engine_ms_by_shards["1"]` — both
//! sides of each ratio are measured in the same process on the same
//! machine, so a slower CI runner cannot fake a regression (and a faster
//! one cannot hide a real one). The gate only fires when the committed
//! baseline was recorded at the same (servers, traces) scale.
//!
//! Scale knobs (env): `ECNUDP_BENCH_SERVERS` (default 150),
//! `ECNUDP_BENCH_TRACES` (per vantage, default 2).

use ecn_bench::BENCH_SEED;
use ecn_core::{run_engine, run_trace, schedule, CampaignConfig, EngineConfig};
use ecn_pool::{build_scenario, PoolPlan};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The old `run_campaign_parallel`, reconstructed: discovery in one world,
/// then one thread per vantage, each rebuilding the entire seeded world
/// before probing its slice of the schedule.
fn legacy_per_vantage_runner(plan: &PoolPlan, cfg: &CampaignConfig) -> usize {
    // The per-vantage thread rebuilds below need the churned plan the old
    // runner used; run_discovery pins churn itself, so this override only
    // exists for the build_scenario calls inside the threads.
    let plan = PoolPlan {
        churn_at: cfg.batch2_start,
        ..plan.clone()
    };
    let (discovery, proto) = ecn_core::run_discovery(&plan, cfg);
    let targets = discovery.targets;
    let vantage_count = proto.vantages.len();
    let mut trace_count = 0usize;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for vi in 0..vantage_count {
            let plan = plan.clone();
            let targets = targets.clone();
            let cfg = *cfg;
            handles.push(scope.spawn(move |_| {
                // the cost under test: a full world build per thread
                let mut sc = build_scenario(&plan, cfg.seed);
                let mine: Vec<_> = schedule(&sc, &cfg)
                    .into_iter()
                    .filter(|t| t.vantage == vi)
                    .collect();
                let mut traces = Vec::with_capacity(mine.len());
                for st in &mine {
                    if sc.sim.now() < st.start {
                        sc.sim.run_until(st.start);
                    }
                    traces.push(run_trace(&mut sc, vi, st.batch, &targets, &cfg));
                }
                traces.len()
            }));
        }
        for h in handles {
            trace_count += h.join().expect("vantage thread");
        }
    })
    .expect("legacy threads");
    trace_count
}

fn main() {
    let servers = env_usize("ECNUDP_BENCH_SERVERS", 150);
    let traces_per_vantage = env_usize("ECNUDP_BENCH_TRACES", 2);
    let num_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let plan = PoolPlan::scaled(servers);
    let cfg = CampaignConfig {
        discovery_rounds: 40,
        traces_per_vantage: Some(traces_per_vantage),
        run_traceroute: false,
        ..CampaignConfig::quick(BENCH_SEED)
    };

    println!(
        "[campaign_sharding] {servers} servers, {traces_per_vantage} traces/vantage, {num_cpus} cpus"
    );

    // Each configuration is timed as the best of three runs: wall-clock
    // on shared/1-cpu runners jitters ±10%, and the regression gate below
    // needs numbers steadier than that.
    const REPEATS: usize = 3;

    // Baseline: the deleted per-vantage-thread runner (13 full builds).
    let mut legacy_ms = f64::MAX;
    let mut legacy_traces = 0;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        legacy_traces = legacy_per_vantage_runner(&plan, &cfg);
        legacy_ms = legacy_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
    }
    println!("[campaign_sharding] legacy per-vantage-thread runner: {legacy_ms:.0} ms ({legacy_traces} traces)");

    // The engine, swept across shard counts.
    let mut sweep: Vec<usize> = vec![1, 2, 4, num_cpus, 13];
    sweep.sort_unstable();
    sweep.dedup();
    let mut rows: Vec<(usize, f64)> = Vec::new();
    let mut first_report: Option<String> = None;
    for &shards in &sweep {
        let mut ms = f64::MAX;
        let mut timing = None;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            let run = run_engine(&plan, &cfg, &EngineConfig::with_shards(shards));
            let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
            if elapsed < ms {
                ms = elapsed;
                timing = Some(run.timing);
            }
            // render so every configuration proves the byte-identical
            // contract
            let report = ecn_core::FullReport::from_campaign(&run.result).render();
            match &first_report {
                None => first_report = Some(report),
                Some(expected) => {
                    assert_eq!(expected, &report, "report drifted across shard counts")
                }
            }
        }
        println!(
            "[campaign_sharding] engine shards={shards}: {ms:.0} ms ({})",
            timing.expect("timed at least once").render()
        );
        rows.push((shards, ms));
    }

    let engine_at_cpus = rows
        .iter()
        .find(|(s, _)| *s == num_cpus)
        .map(|(_, ms)| *ms)
        .expect("num_cpus swept");
    println!(
        "[campaign_sharding] engine@num_cpus {engine_at_cpus:.0} ms vs legacy {legacy_ms:.0} ms → speedup {:.2}x",
        legacy_ms / engine_at_cpus
    );

    // Regression gate against the committed artefact (see module docs).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    let engine_1 = rows
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, ms)| *ms)
        .expect("shards=1 swept");
    let current_ratio = legacy_ms / engine_1;
    if let Ok(committed) = std::fs::read_to_string(&out) {
        let sec = "campaign_sharding";
        let committed_scale = (
            ecn_bench::bench_json_number(&committed, sec, &["servers"]),
            ecn_bench::bench_json_number(&committed, sec, &["traces_per_vantage"]),
        );
        let committed_ratio =
            ecn_bench::bench_json_number(&committed, sec, &["legacy_per_vantage_thread_ms"])
                .zip(ecn_bench::bench_json_number(
                    &committed,
                    sec,
                    &["engine_ms_by_shards", "1"],
                ))
                .map(|(l, e)| l / e);
        match (committed_scale, committed_ratio) {
            ((Some(s), Some(t)), Some(baseline))
                if s as usize == servers && t as usize == traces_per_vantage =>
            {
                println!(
                    "[campaign_sharding] single-shard speedup vs legacy: {current_ratio:.2}x (committed baseline {baseline:.2}x)"
                );
                if std::env::var("ECNUDP_BENCH_ENFORCE").as_deref() == Ok("1")
                    && current_ratio < baseline * 0.8
                {
                    eprintln!(
                        "[campaign_sharding] FAIL: single-shard throughput regressed >20% \
                         ({current_ratio:.2}x vs committed {baseline:.2}x)"
                    );
                    std::process::exit(1);
                }
            }
            _ => println!(
                "[campaign_sharding] committed baseline missing or at a different scale — regression gate skipped"
            ),
        }
    }

    // BENCH_campaign.json: the perf trajectory artefact. Each bench target
    // owns one top-level section; `update_bench_json` preserves the rest.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"servers\": {servers},\n"));
    json.push_str(&format!(
        "  \"traces_per_vantage\": {traces_per_vantage},\n"
    ));
    json.push_str(&format!("  \"num_cpus\": {num_cpus},\n"));
    json.push_str(&format!(
        "  \"legacy_per_vantage_thread_ms\": {legacy_ms:.1},\n"
    ));
    json.push_str("  \"engine_ms_by_shards\": {\n");
    for (i, (shards, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{shards}\": {ms:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_at_num_cpus\": {:.3}\n",
        legacy_ms / engine_at_cpus
    ));
    json.push('}');
    // cargo runs benches with CWD = the package dir; emit at the workspace
    // root where CI picks the artefact up
    ecn_bench::update_bench_json(&out, "campaign_sharding", &json);
    println!("[campaign_sharding] wall-clock table -> BENCH_campaign.json");
}
