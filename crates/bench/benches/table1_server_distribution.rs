//! Table 1 + Figure 1: discover the pool via DNS and aggregate the
//! geographic distribution; writes the Figure 1 scatter CSV.

use ecn_bench::{time_kernel, BENCH_SEED};
use ecn_core::analysis::table1;
use ecn_core::{run_discovery, CampaignConfig};
use ecn_pool::PoolPlan;

fn main() {
    let cfg = CampaignConfig {
        seed: BENCH_SEED,
        ..CampaignConfig::default()
    };
    let (discovery, sc) = run_discovery(&PoolPlan::paper(), &cfg);
    let t1 = table1(&sc.geodb, &discovery.targets);
    println!("{}", t1.render());
    println!(
        "discovery: {} servers from {} DNS queries ({} timeouts)",
        discovery.targets.len(),
        discovery.queries,
        discovery.timeouts
    );

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("mkdir");
    let csv = sc.geodb.scatter_csv(&discovery.targets);
    std::fs::write(out.join("figure1_scatter.csv"), &csv).expect("write csv");
    println!(
        "Figure 1 scatter: {} rows -> target/figures/figure1_scatter.csv",
        csv.lines().count() - 1
    );

    // kernel: the Table-1 aggregation over the full target list
    time_kernel("table1 aggregation (2500 targets)", 200, || {
        table1(&sc.geodb, &discovery.targets)
    });
    // kernel: a scaled discovery round
    time_kernel("dns discovery (scaled 250 servers)", 3, || {
        let cfg = CampaignConfig {
            seed: BENCH_SEED,
            discovery_rounds: 80,
            ..CampaignConfig::quick(BENCH_SEED)
        };
        run_discovery(&PoolPlan::scaled(250), &cfg).0.targets.len()
    });
}
