//! Figure 6: the 2000–2015 trend in TCP ECN negotiation, with our
//! measured point appended and a logistic growth fit.

use ecn_bench::{paper_campaign, time_kernel};
use ecn_core::analysis::{figure5, figure6, fit_logistic, historical_points};

fn main() {
    let result = paper_campaign(false);
    let measured = figure5(&result.traces).negotiated_pct();
    let fig = figure6(measured);
    println!("{}", fig.render());

    // yearly curve samples for plotting
    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("mkdir");
    let mut csv = String::from("year,fit_percent\n");
    for y in 2000..=2017 {
        csv.push_str(&format!("{y},{:.3}\n", fig.fit.at(f64::from(y))));
    }
    std::fs::write(out.join("figure6_fit.csv"), &csv).expect("write csv");
    println!("fit curve -> target/figures/figure6_fit.csv");

    time_kernel("logistic fit (8 points)", 10_000, || {
        fit_logistic(&historical_points())
    });
}
