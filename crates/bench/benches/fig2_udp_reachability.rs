//! Figure 2: per-trace UDP reachability with and without ECT(0) marks —
//! the paper's headline result (98.97% / 99.45%).

use ecn_bench::{paper_campaign, time_kernel};
use ecn_core::analysis::figure2;

fn main() {
    let result = paper_campaign(false);
    let fig = figure2(&result.traces);
    println!("{}", fig.render());

    // per-trace bars, exported for plotting
    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("mkdir");
    let mut csv = String::from("trace,vantage,pct_a,pct_b,plain_reachable,ect_reachable\n");
    for (i, b) in fig.bars.iter().enumerate() {
        csv.push_str(&format!(
            "{i},{},{:.4},{:.4},{},{}\n",
            b.vantage_key, b.pct_a, b.pct_b, b.plain_reachable, b.ect_reachable
        ));
    }
    std::fs::write(out.join("figure2_bars.csv"), &csv).expect("write csv");
    println!("per-trace series -> target/figures/figure2_bars.csv");

    // kernel: the Figure 2 aggregation over all 210 traces
    time_kernel(
        "figure2 aggregation (210 traces x 2500 servers)",
        20,
        || figure2(&result.traces),
    );
}
