//! Report-path memory bench: the streamed-aggregate (trace-free) default
//! versus the legacy trace-keeping escape hatch, on the same campaign.
//!
//! The metric that matters is `peak_resident_traces` — the maximum number
//! of `TraceRecord`s simultaneously retained across all shards. The
//! trace-free path must report **zero** (the engine's reducers are the
//! report path's only data source); the keeping path retains every record
//! it schedules, which is the O(traces) memory floor this bench tracks
//! the removal of. Both paths must render byte-identical reports.
//!
//! Emits the `report_memory` section of `BENCH_campaign.json`.
//!
//! Scale knobs (env): `ECNUDP_BENCH_SERVERS` (default 150),
//! `ECNUDP_BENCH_TRACES` (per vantage, default 2).

use ecn_bench::BENCH_SEED;
use ecn_core::{run_engine, CampaignConfig, EngineConfig, FullReport};
use ecn_pool::PoolPlan;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let servers = env_usize("ECNUDP_BENCH_SERVERS", 150);
    let traces_per_vantage = env_usize("ECNUDP_BENCH_TRACES", 2);
    let plan = PoolPlan::scaled(servers);
    let cfg = CampaignConfig {
        discovery_rounds: 40,
        traces_per_vantage: Some(traces_per_vantage),
        ..CampaignConfig::quick(BENCH_SEED)
    };

    println!("[report_memory] {servers} servers, {traces_per_vantage} traces/vantage");

    // The default: reducer-only campaign + aggregates-first render.
    let t0 = Instant::now();
    let lean = run_engine(&plan, &cfg, &EngineConfig::default());
    let lean_report = FullReport::from_aggregates(&lean.result).render();
    let lean_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // The escape hatch: retain every TraceRecord, render via the legacy
    // trace walk.
    let t0 = Instant::now();
    let kept = run_engine(&plan, &cfg, &EngineConfig::default().keeping_traces());
    let kept_report = FullReport::from_traces(&kept.result).render();
    let kept_ms = t0.elapsed().as_secs_f64() * 1000.0;

    assert_eq!(
        lean_report, kept_report,
        "trace-free and trace-derived reports must be byte-identical"
    );
    assert_eq!(
        lean.peak_resident_traces, 0,
        "trace-free path retained a TraceRecord"
    );
    let logical_traces = lean.result.aggregates.trace_stats.len();
    assert_eq!(kept.peak_resident_traces, kept.result.traces.len());

    // Outcome observations per second through the streaming path: the
    // (server, trace) measurements the reducers absorbed per wall second.
    let observations = logical_traces * lean.result.targets.len();
    let obs_per_sec = observations as f64 / (lean_ms / 1000.0);

    println!(
        "[report_memory] trace-free: {lean_ms:.0} ms, peak resident traces {} ({} logical traces, {observations} observations, {obs_per_sec:.0} obs/s)",
        lean.peak_resident_traces, logical_traces,
    );
    println!(
        "[report_memory] keep-traces: {kept_ms:.0} ms, peak resident traces {}",
        kept.peak_resident_traces,
    );
    println!("[report_memory] reports byte-identical across both paths");

    let json = format!(
        "{{\n  \"servers\": {servers},\n  \"traces_per_vantage\": {traces_per_vantage},\n  \"logical_traces\": {logical_traces},\n  \"observations\": {observations},\n  \"trace_free_peak_resident_traces\": {},\n  \"keep_traces_peak_resident_traces\": {},\n  \"trace_free_ms\": {lean_ms:.1},\n  \"keep_traces_ms\": {kept_ms:.1},\n  \"observations_per_sec\": {obs_per_sec:.0},\n  \"reports_byte_identical\": true\n}}",
        lean.peak_resident_traces, kept.peak_resident_traces,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    ecn_bench::update_bench_json(&out, "report_memory", &json);
    println!("[report_memory] memory table -> BENCH_campaign.json");
}
