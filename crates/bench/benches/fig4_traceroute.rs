//! Figure 4 / §4.2: the ECN traceroute survey — 13 vantages × 2500
//! targets, hop-level mark-survival statistics, AS-boundary analysis, and
//! DOT map exports.

use ecn_bench::{time_kernel, BENCH_SEED};
use ecn_core::analysis::{figure4, figure4_dot};
use ecn_core::{traceroute, CampaignConfig, VantageRoutes};
use ecn_pool::{build_scenario, PoolPlan};

fn main() {
    let cfg = CampaignConfig {
        seed: BENCH_SEED,
        ..CampaignConfig::default()
    };
    let plan = PoolPlan::paper();

    // the survey itself, parallel over vantages (as the campaign runs it)
    let t0 = std::time::Instant::now();
    let mut routes: Vec<VantageRoutes> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for vi in 0..13 {
            let plan = plan.clone();
            handles.push(scope.spawn(move |_| {
                let mut sc = build_scenario(&plan, cfg.seed);
                let handle = sc.vantages[vi].handle.clone();
                let targets: Vec<std::net::Ipv4Addr> = sc.servers.iter().map(|s| s.addr).collect();
                let mut paths = Vec::with_capacity(targets.len());
                for dst in targets {
                    paths.push(traceroute(&mut sc.sim, &handle, dst, &cfg.traceroute));
                }
                VantageRoutes {
                    vantage_key: sc.vantages[vi].spec.key.to_string(),
                    paths,
                }
            }));
        }
        for h in handles {
            routes.push(h.join().expect("vantage thread"));
        }
    })
    .expect("survey threads");
    eprintln!(
        "[bench] traceroute survey: {} paths in {:.1}s",
        routes.iter().map(|r| r.paths.len()).sum::<usize>(),
        t0.elapsed().as_secs_f64()
    );

    let sc = build_scenario(&plan, cfg.seed);
    let stats = figure4(&routes, &sc.asdb);
    println!("{}", stats.render());

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).expect("mkdir");
    for vr in routes.iter().take(2) {
        let path = out.join(format!("figure4_{}.dot", vr.vantage_key));
        std::fs::write(&path, figure4_dot(vr)).expect("write dot");
        println!("map -> {}", path.display());
    }

    time_kernel("figure4 aggregation (32500 paths)", 5, || {
        figure4(&routes, &sc.asdb)
    });
    time_kernel("one ECN traceroute (100-server world)", 10, || {
        let mut sc = build_scenario(&PoolPlan::scaled(100), BENCH_SEED);
        let handle = sc.vantages[0].handle.clone();
        let dst = sc.servers[0].addr;
        traceroute(&mut sc.sim, &handle, dst, &cfg.traceroute)
            .hops
            .len()
    });
}
