//! A counting global allocator: turns "the hot loop is allocation-free"
//! from prose into a measured number.
//!
//! The type is always compiled (it is inert unless installed); binaries
//! that want the gauge install it explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ecn_bench::alloc::CountingAlloc = ecn_bench::alloc::CountingAlloc;
//! ```
//!
//! The `probe_hot_loop` bench installs it behind the `alloc-count`
//! feature (so default bench runs measure undisturbed wall clock), and
//! the `alloc_regression` integration test installs it unconditionally —
//! its whole point is the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// `System`, plus two relaxed counters per allocation.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side-effect-only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // only the growth is newly-requested memory; counting the full
        // new_size would overstate realloc-heavy (Vec-growth) workloads
        ALLOCATED_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations (malloc + realloc calls) since process start.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Allocation count delta across `f` (meaningful only in binaries that
/// installed [`CountingAlloc`]; returns 0 delta otherwise).
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocation_count();
    let value = f();
    (value, allocation_count() - before)
}
