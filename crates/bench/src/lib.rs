//! Shared helpers for the benchmark harness: each `[[bench]]` target
//! regenerates one of the paper's tables/figures (printing the rows the
//! paper reports) and then times the computational kernel behind it.

use ecn_core::{CampaignConfig, CampaignResult};
use ecn_pool::PoolPlan;
use std::time::Instant;

/// Default seed for benchmark runs (fixed so printed artefacts are stable).
pub const BENCH_SEED: u64 = 2015;

/// Run the full paper-scale campaign (optionally with the traceroute
/// survey), reporting wall time.
pub fn paper_campaign(run_traceroute: bool) -> CampaignResult {
    let plan = PoolPlan::paper();
    let cfg = CampaignConfig {
        seed: BENCH_SEED,
        run_traceroute,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let result = ecn_core::run_campaign_parallel(&plan, &cfg);
    eprintln!(
        "[bench] paper-scale campaign ({} traces{}) in {:.1}s",
        result.traces.len(),
        if run_traceroute {
            ", with traceroute survey"
        } else {
            ""
        },
        t0.elapsed().as_secs_f64()
    );
    result
}

/// Time a closure `iters` times and print mean per-iteration milliseconds.
pub fn time_kernel<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    // warm-up
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1000.0 / f64::from(iters);
    println!("[kernel] {label}: {per:.3} ms/iter over {iters} iters");
}
