//! Shared helpers for the benchmark harness: each `[[bench]]` target
//! regenerates one of the paper's tables/figures (printing the rows the
//! paper reports) and then times the computational kernel behind it.

use ecn_core::{CampaignConfig, CampaignResult, EngineConfig};
use ecn_pool::PoolPlan;
use std::time::Instant;

/// Default seed for benchmark runs (fixed so printed artefacts are stable).
pub const BENCH_SEED: u64 = 2015;

/// Run the full paper-scale campaign through the sharded engine
/// (optionally with the traceroute survey), reporting wall time and the
/// engine's phase breakdown.
pub fn paper_campaign(run_traceroute: bool) -> CampaignResult {
    let plan = PoolPlan::paper();
    let cfg = CampaignConfig {
        seed: BENCH_SEED,
        run_traceroute,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let run = ecn_core::run_engine(&plan, &cfg, &EngineConfig::default());
    eprintln!(
        "[bench] paper-scale campaign ({} traces{}, {} shards x {} units) in {:.1}s\n[bench] {}",
        run.result.traces.len(),
        if run_traceroute {
            ", with traceroute survey"
        } else {
            ""
        },
        run.shards,
        run.units,
        t0.elapsed().as_secs_f64(),
        run.timing.render(),
    );
    run.result
}

/// Time a closure `iters` times and print mean per-iteration milliseconds.
pub fn time_kernel<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    // warm-up
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1000.0 / f64::from(iters);
    println!("[kernel] {label}: {per:.3} ms/iter over {iters} iters");
}
