//! Shared helpers for the benchmark harness: each `[[bench]]` target
//! regenerates one of the paper's tables/figures (printing the rows the
//! paper reports) and then times the computational kernel behind it.

use ecn_core::{CampaignConfig, CampaignResult, EngineConfig};
use ecn_pool::PoolPlan;
use std::path::Path;
use std::time::Instant;

pub mod alloc;

/// Default seed for benchmark runs (fixed so printed artefacts are stable).
pub const BENCH_SEED: u64 = 2015;

/// Run the full paper-scale campaign through the sharded engine
/// (optionally with the traceroute survey), reporting wall time and the
/// engine's phase breakdown. Keeps the raw trace records: the per-artefact
/// benches time the legacy trace-walk kernels over them (the streamed
/// default path is benched separately by `report_memory`).
pub fn paper_campaign(run_traceroute: bool) -> CampaignResult {
    let plan = PoolPlan::paper();
    let cfg = CampaignConfig {
        seed: BENCH_SEED,
        run_traceroute,
        ..CampaignConfig::default()
    };
    let t0 = Instant::now();
    let run = ecn_core::run_engine(&plan, &cfg, &EngineConfig::default().keeping_traces());
    eprintln!(
        "[bench] paper-scale campaign ({} traces{}, {} shards x {} units) in {:.1}s\n[bench] {}",
        run.result.traces.len(),
        if run_traceroute {
            ", with traceroute survey"
        } else {
            ""
        },
        run.shards,
        run.units,
        t0.elapsed().as_secs_f64(),
        run.timing.render(),
    );
    run.result
}

/// Time a closure `iters` times and print mean per-iteration milliseconds.
pub fn time_kernel<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    // warm-up
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1000.0 / f64::from(iters);
    println!("[kernel] {label}: {per:.3} ms/iter over {iters} iters");
}

/// Insert or replace one top-level section of `BENCH_campaign.json`,
/// preserving the others — several bench targets (`campaign_sharding`,
/// `report_memory`) contribute sections to the same trajectory artefact,
/// in whatever order they run. `section_body` must be a JSON object
/// (`{...}`); the file keeps one `"name": {...}` entry per section.
///
/// The write is atomic (temp file + rename in the target's directory), so
/// an interrupted or concurrent bench run can never leave a torn
/// document — readers see either the old sections or the new ones.
pub fn update_bench_json(path: &Path, section: &str, section_body: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut sections = parse_top_level_sections(&existing);
    sections.retain(|(name, _)| name != section);
    sections.push((section.to_string(), section_body.trim().to_string()));
    let mut out = String::from("{\n");
    for (i, (name, body)) in sections.iter().enumerate() {
        let comma = if i + 1 == sections.len() { "" } else { "," };
        out.push_str(&format!("  \"{name}\": {}{comma}\n", indent_block(body)));
    }
    out.push_str("}\n");
    // Same directory as the target so the rename cannot cross filesystems.
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, out).expect("write bench json temp file");
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        panic!("atomic rename of bench json into {}: {e}", path.display());
    }
}

/// Read one numeric leaf out of a `BENCH_campaign.json` document:
/// `section` selects the top-level object, `keys` walk down it in order
/// (each key is found by textual scan — sufficient for the flat objects
/// the bench writers emit). Returns `None` when any key is missing.
pub fn bench_json_number(doc: &str, section: &str, keys: &[&str]) -> Option<f64> {
    let (_, body) = parse_top_level_sections(doc)
        .into_iter()
        .find(|(name, _)| name == section)?;
    let mut at = 0usize;
    for k in keys {
        let needle = format!("\"{k}\"");
        at += body[at..].find(&needle)? + needle.len();
    }
    let rest = body[at..].trim_start_matches([':', ' ', '\t']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Split a `{ "name": {...}, ... }` document into (name, object) pairs by
/// brace counting. Only object-valued top-level keys are supported — which
/// is exactly what the bench writers emit. None of our emitted strings
/// contain braces, so no string-state tracking is needed.
fn parse_top_level_sections(doc: &str) -> Vec<(String, String)> {
    let mut sections = Vec::new();
    let bytes = doc.as_bytes();
    let mut i = match doc.find('{') {
        Some(p) => p + 1,
        None => return sections,
    };
    while i < bytes.len() {
        let Some(q0) = doc[i..].find('"').map(|p| i + p) else {
            break;
        };
        let Some(q1) = doc[q0 + 1..].find('"').map(|p| q0 + 1 + p) else {
            break;
        };
        let name = doc[q0 + 1..q1].to_string();
        let Some(colon) = doc[q1..].find(':').map(|p| q1 + p) else {
            break;
        };
        let Some(value_start) = doc[colon + 1..]
            .find(|c: char| !c.is_whitespace())
            .map(|p| colon + 1 + p)
        else {
            break;
        };
        if bytes[value_start] != b'{' {
            // legacy flat entry (scalar value): drop it and move on
            i = match doc[value_start..].find([',', '}']) {
                Some(p) => value_start + p + 1,
                None => break,
            };
            continue;
        }
        let b0 = value_start;
        let mut depth = 0usize;
        let mut b1 = b0;
        for (k, c) in doc[b0..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        b1 = b0 + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        sections.push((name, dedent_block(&doc[b0..=b1])));
        i = b1 + 1;
    }
    sections
}

/// Strip the common leading indentation a previous write added, so
/// re-serialising a preserved section is idempotent (indentation would
/// otherwise grow two spaces per merge).
fn dedent_block(body: &str) -> String {
    let common = body
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.len() - l.trim_start().len())
        .min()
        .unwrap_or(0);
    let mut lines = body.lines();
    let mut out = String::from(lines.next().unwrap_or("{").trim_start());
    for line in lines {
        out.push('\n');
        out.push_str(line.get(common..).unwrap_or_else(|| line.trim_start()));
    }
    out
}

/// Re-indent a JSON object body so nested lines sit two spaces deeper
/// under their section key.
fn indent_block(body: &str) -> String {
    let mut lines = body.lines();
    let mut out = String::from(lines.next().unwrap_or("{").trim_start());
    for line in lines {
        out.push('\n');
        out.push_str("  ");
        out.push_str(line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_sections_merge_and_replace() {
        let dir = std::env::temp_dir().join("ecn_bench_json_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        update_bench_json(&path, "alpha", "{\n  \"x\": 1\n}");
        update_bench_json(&path, "beta", "{\n  \"y\": {\n    \"z\": 2\n  }\n}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"alpha\""), "{doc}");
        assert!(doc.contains("\"beta\""), "{doc}");
        assert!(doc.contains("\"z\": 2"), "{doc}");

        // replacing a section keeps the other intact
        update_bench_json(&path, "alpha", "{\n  \"x\": 9\n}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"x\": 9"), "{doc}");
        assert!(!doc.contains("\"x\": 1"), "{doc}");
        assert!(doc.contains("\"z\": 2"), "{doc}");

        // merging is idempotent: preserved sections keep their exact
        // bytes (indentation must not drift deeper per merge round)
        update_bench_json(&path, "alpha", "{\n  \"x\": 9\n}");
        let doc2 = std::fs::read_to_string(&path).unwrap();
        assert_eq!(doc, doc2, "re-merge changed preserved bytes");

        let sections = parse_top_level_sections(&doc);
        assert_eq!(sections.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_json_update_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("ecn_bench_json_atomic_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_atomic.json");
        let _ = std::fs::remove_file(&path);

        update_bench_json(&path, "alpha", "{\n  \"x\": 1\n}");
        update_bench_json(&path, "beta", "{\n  \"y\": 2\n}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(
            doc.contains("\"alpha\"") && doc.contains("\"beta\""),
            "{doc}"
        );
        // the temp file must be renamed away, never left beside the target
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
